"""Tests for the compiled-corpus layer and its backend/engine entry points.

The compiled corpus must be a pure re-encoding: every corpus-level result
(stacked posteriors, decoded paths, likelihoods, M-step updates) has to
match what the per-sequence paths produce on the same data — to 1e-8 for
the scaled recursions, bit-identically for Viterbi (the fused kernel runs
the reference log-domain recursion) and for the underflow fallbacks (which
call the reference functions directly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import InferenceConfig, inference_backend, set_inference_config
from repro.exceptions import DimensionMismatchError, ValidationError
from repro.hmm import (
    HMM,
    BaumWelchTrainer,
    BernoulliEmission,
    CategoricalEmission,
    CompiledCorpus,
    GaussianEmission,
    InferenceEngine,
    compile_corpus,
)

ATOL = 1e-8


def random_problem(seed, n_states=4, n_symbols=8, lengths=(1, 2, 5, 17, 40, 3, 9)):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    startprob = rng.dirichlet(np.ones(n_states))
    transmat = rng.dirichlet(np.ones(n_states), size=n_states)
    sequences = [rng.integers(0, n_symbols, size=length) for length in lengths]
    return startprob, transmat, emissions, sequences


class TestCompiledCorpusStructure:
    def test_concat_offsets_and_lengths(self):
        sequences = [np.array([1, 2]), np.array([3]), np.array([4, 5, 6])]
        corpus = CompiledCorpus(sequences, bucket_size=2)
        assert corpus.n_sequences == 3
        assert corpus.n_tokens == 6
        np.testing.assert_array_equal(corpus.lengths, [2, 1, 3])
        np.testing.assert_array_equal(corpus.offsets, [0, 2, 3, 6])
        np.testing.assert_array_equal(corpus.concat, [1, 2, 3, 4, 5, 6])

    def test_buckets_cover_every_sequence_once(self):
        rng = np.random.default_rng(0)
        sequences = [rng.integers(0, 5, size=n) for n in rng.integers(1, 30, size=23)]
        corpus = CompiledCorpus(sequences, bucket_size=4)
        seen = np.concatenate([b.idx for b in corpus.buckets])
        assert sorted(seen.tolist()) == list(range(len(sequences)))
        for bucket in corpus.buckets:
            assert bucket.idx.size <= 4
            # length-sorted buckets
            assert np.all(np.diff(bucket.lengths) >= 0)

    def test_positions_index_the_right_tokens(self):
        rng = np.random.default_rng(1)
        sequences = [rng.integers(0, 9, size=n) for n in (3, 7, 1, 7, 2)]
        corpus = CompiledCorpus(sequences, bucket_size=3)
        for bucket in corpus.buckets:
            for row, j in enumerate(bucket.idx):
                length = int(bucket.lengths[row])
                gathered = corpus.concat[bucket.positions[row, :length]]
                np.testing.assert_array_equal(gathered, sequences[j])
                # padding points at the sentinel slot
                assert np.all(bucket.positions[row, length:] == corpus.n_tokens)

    def test_split_and_tables_round_trip(self):
        _, _, emissions, sequences = random_problem(2)
        corpus = CompiledCorpus(sequences, bucket_size=3)
        values = np.arange(corpus.n_tokens * 2, dtype=float).reshape(corpus.n_tokens, 2)
        parts = corpus.split(values)
        assert len(parts) == len(sequences)
        np.testing.assert_array_equal(np.concatenate(parts), values)

        scores_ext = corpus.score(emissions)
        assert scores_ext.shape == (corpus.n_tokens + 1, emissions.n_states)
        np.testing.assert_array_equal(scores_ext[-1], 0.0)
        for table, seq in zip(corpus.tables(scores_ext), sequences):
            np.testing.assert_allclose(
                table, emissions.log_likelihoods(seq), atol=0, rtol=0
            )

    def test_gather_matches_manual_padding(self):
        _, _, emissions, sequences = random_problem(3)
        corpus = CompiledCorpus(sequences, bucket_size=3)
        scores_ext = corpus.score(emissions)
        for bucket in corpus.buckets:
            log_b = corpus.gather(scores_ext, bucket)
            assert log_b.shape == (
                bucket.idx.size,
                bucket.max_len,
                emissions.n_states,
            )
            for row, j in enumerate(bucket.idx):
                length = int(bucket.lengths[row])
                np.testing.assert_array_equal(
                    log_b[row, :length], emissions.log_likelihoods(sequences[j])
                )
                np.testing.assert_array_equal(log_b[row, length:], 0.0)

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            CompiledCorpus([])
        with pytest.raises(ValidationError):
            CompiledCorpus([np.array([1, 2])], bucket_size=0)
        with pytest.raises(ValidationError):
            CompiledCorpus([np.array([1, 2]), np.array([], dtype=int)])
        with pytest.raises(DimensionMismatchError):
            CompiledCorpus([np.zeros(3), np.zeros((3, 2))])
        corpus = CompiledCorpus([np.array([0, 1])])
        with pytest.raises(DimensionMismatchError):
            corpus.extend_scores(np.zeros((5, 2)))

    @pytest.mark.parametrize("backend", ["scaled", "log"])
    def test_unextended_score_table_rejected(self, backend):
        # Passing a raw (n_tokens, K) table instead of the extended
        # (n_tokens + 1, K) one would silently truncate the last sequence;
        # every backend must reject it.
        startprob, transmat, emissions, sequences = random_problem(12)
        engine = InferenceEngine(backend=backend, bucket_size=3)
        corpus = engine.compile(sequences)
        bare = emissions.log_likelihoods_concat(corpus.concat)
        for method in ("posteriors_corpus", "viterbi_corpus", "log_likelihood_corpus"):
            with pytest.raises(DimensionMismatchError):
                getattr(engine, method)(startprob, transmat, corpus, bare)

    def test_compile_corpus_follows_process_config(self):
        sequences = [np.array([0, 1]), np.array([1])]
        with inference_backend("scaled", bucket_size=17):
            assert compile_corpus(sequences).bucket_size == 17
        assert compile_corpus(sequences, bucket_size=5).bucket_size == 5

    def test_engine_compile_uses_backend_bucket_size(self):
        engine = InferenceEngine(backend="scaled", bucket_size=9)
        corpus = engine.compile([np.array([0, 1]), np.array([1])])
        assert corpus.bucket_size == 9


class TestCorpusEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_corpus_posteriors_match_reference(self, seed):
        startprob, transmat, emissions, sequences = random_problem(seed)
        scaled = InferenceEngine(backend="scaled", bucket_size=3)
        reference = InferenceEngine(backend="log")
        corpus = scaled.compile(sequences)
        scores_ext = corpus.score(emissions)

        got = scaled.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        want = reference.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        np.testing.assert_allclose(got.gamma_concat, want.gamma_concat, atol=ATOL)
        np.testing.assert_allclose(got.xi_sum, want.xi_sum, atol=ATOL)
        np.testing.assert_allclose(got.start_counts, want.start_counts, atol=ATOL)
        np.testing.assert_allclose(
            got.log_likelihoods, want.log_likelihoods, atol=ATOL, rtol=1e-10
        )
        assert abs(got.log_likelihood - want.log_likelihood) < 1e-6

        # and both match the per-sequence batch path
        tables = emissions.log_likelihoods_batch(sequences)
        per_seq = reference.posteriors_batch(startprob, transmat, tables)
        np.testing.assert_allclose(
            got.gamma_concat,
            np.concatenate([r.gamma for r in per_seq]),
            atol=ATOL,
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_corpus_viterbi_bit_identical_to_reference(self, seed):
        startprob, transmat, emissions, sequences = random_problem(seed)
        scaled = InferenceEngine(backend="scaled", bucket_size=3)
        reference = InferenceEngine(backend="log")
        corpus = scaled.compile(sequences)
        scores_ext = corpus.score(emissions)

        got = scaled.viterbi_corpus(startprob, transmat, corpus, scores_ext)
        want = reference.viterbi_batch(
            startprob, transmat, emissions.log_likelihoods_batch(sequences)
        )
        for (g_path, g_lj), (w_path, w_lj) in zip(got, want):
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_corpus_log_likelihood_matches_reference(self, seed):
        startprob, transmat, emissions, sequences = random_problem(seed)
        scaled = InferenceEngine(backend="scaled", bucket_size=3)
        reference = InferenceEngine(backend="log")
        corpus = scaled.compile(sequences)
        scores_ext = corpus.score(emissions)
        got = scaled.log_likelihood_corpus(startprob, transmat, corpus, scores_ext)
        want = reference.log_likelihood_corpus(startprob, transmat, corpus, scores_ext)
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=1e-10)

    def test_corpus_underflow_falls_back_exactly(self):
        # One sequence's forward mass vanishes mid-way (>745-nat spread at a
        # single timestep); the corpus kernels must recompute exactly that
        # sequence with the log-domain reference — bit-identical gamma and
        # likelihood — while its bucket-mates stay on the fast path.
        startprob = np.array([1.0, 0.0])
        transmat = np.eye(2)
        lengths = (6, 4, 5)
        sequences = [np.zeros(n, dtype=np.int64) for n in lengths]
        scaled = InferenceEngine(backend="scaled", bucket_size=8)
        reference = InferenceEngine(backend="log")
        corpus = scaled.compile(sequences)
        rng = np.random.default_rng(0)
        scores = -rng.uniform(0.1, 2.0, size=(corpus.n_tokens, 2))
        scores[2] = [-800.0, 0.0]  # timestep 2 of sequence 0
        scores_ext = corpus.extend_scores(scores)

        got = scaled.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        want = reference.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        assert np.isfinite(want.log_likelihoods[0])
        assert got.log_likelihoods[0] == want.log_likelihoods[0]
        np.testing.assert_allclose(
            got.log_likelihoods, want.log_likelihoods, atol=ATOL, rtol=1e-10
        )
        got_parts = corpus.split(got.gamma_concat)
        want_parts = corpus.split(want.gamma_concat)
        np.testing.assert_array_equal(got_parts[0], want_parts[0])
        for g, w in zip(got_parts[1:], want_parts[1:]):
            np.testing.assert_allclose(g, w, atol=ATOL)
        np.testing.assert_allclose(got.start_counts, want.start_counts, atol=ATOL)
        np.testing.assert_allclose(got.xi_sum, want.xi_sum, atol=ATOL)

        got_ll = scaled.log_likelihood_corpus(startprob, transmat, corpus, scores_ext)
        want_ll = reference.log_likelihood_corpus(
            startprob, transmat, corpus, scores_ext
        )
        assert got_ll[0] == want_ll[0]
        np.testing.assert_allclose(got_ll, want_ll, atol=ATOL)

    def test_n_workers_does_not_change_results(self):
        startprob, transmat, emissions, sequences = random_problem(17)
        serial = InferenceEngine(backend="scaled", bucket_size=2, n_workers=1)
        threaded = InferenceEngine(backend="scaled", bucket_size=2, n_workers=4)
        corpus = serial.compile(sequences)
        scores_ext = corpus.score(emissions)
        got = threaded.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        want = serial.posteriors_corpus(startprob, transmat, corpus, scores_ext)
        np.testing.assert_array_equal(got.gamma_concat, want.gamma_concat)
        np.testing.assert_array_equal(got.xi_sum, want.xi_sum)
        got_v = threaded.viterbi_corpus(startprob, transmat, corpus, scores_ext)
        want_v = serial.viterbi_corpus(startprob, transmat, corpus, scores_ext)
        for (gp, gl), (wp, wl) in zip(got_v, want_v):
            np.testing.assert_array_equal(gp, wp)
            assert gl == wl

    def test_n_workers_config_round_trip(self):
        previous = set_inference_config(InferenceConfig(n_workers=3))
        try:
            engine = InferenceEngine()
            assert engine.backend.n_workers == 3
        finally:
            set_inference_config(previous)
        with pytest.raises(ValidationError):
            InferenceConfig(n_workers=0)


class TestVectorizedMStep:
    def test_categorical_m_step_compiled_matches_loop(self):
        rng = np.random.default_rng(4)
        sequences = [rng.integers(0, 7, size=n) for n in (3, 9, 1, 14)]
        corpus = CompiledCorpus(sequences, bucket_size=3)
        gammas = [rng.dirichlet(np.ones(5), size=len(s)) for s in sequences]
        loop = CategoricalEmission.random_init(5, 7, seed=0)
        fast = loop.copy()
        loop.m_step(sequences, gammas)
        fast.m_step_compiled(corpus, np.concatenate(gammas))
        np.testing.assert_allclose(
            fast.emission_probs, loop.emission_probs, atol=1e-12
        )

    def test_categorical_concat_scoring_matches(self):
        rng = np.random.default_rng(5)
        em = CategoricalEmission.random_init(4, 9, seed=5)
        concat = rng.integers(0, 9, size=50)
        np.testing.assert_array_equal(
            em.log_likelihoods_concat(concat), em.log_likelihoods(concat)
        )
        with pytest.raises(ValidationError):
            em.log_likelihoods_concat(np.array([0, 9]))

    def test_bernoulli_m_step_compiled_matches_loop(self):
        rng = np.random.default_rng(6)
        sequences = [
            rng.integers(0, 2, size=(n, 6)).astype(float) for n in (2, 5, 8, 1)
        ]
        corpus = CompiledCorpus(sequences, bucket_size=2)
        gammas = [rng.dirichlet(np.ones(3), size=len(s)) for s in sequences]
        loop = BernoulliEmission.random_init(3, 6, seed=1)
        fast = loop.copy()
        loop.m_step(sequences, gammas)
        fast.m_step_compiled(corpus, np.concatenate(gammas))
        np.testing.assert_allclose(fast.pixel_probs, loop.pixel_probs, atol=1e-12)

    def test_gaussian_m_step_compiled_matches_loop(self):
        rng = np.random.default_rng(7)
        sequences = [rng.normal(size=n) for n in (4, 11, 2)]
        corpus = CompiledCorpus(sequences, bucket_size=2)
        gammas = [rng.dirichlet(np.ones(3), size=len(s)) for s in sequences]
        loop = GaussianEmission(np.array([0.0, 1.0, 2.0]), np.ones(3))
        fast = loop.copy()
        loop.m_step(sequences, gammas)
        fast.m_step_compiled(corpus, np.concatenate(gammas))
        np.testing.assert_allclose(fast.means, loop.means, atol=1e-12)
        np.testing.assert_allclose(fast.variances, loop.variances, atol=1e-12)


class TestTrainerOnCompiledCorpus:
    def test_fit_accepts_precompiled_corpus(self):
        startprob, transmat, emissions, sequences = random_problem(8, lengths=(4, 6, 9, 3))
        engine = InferenceEngine(backend="scaled", bucket_size=2)
        from_raw = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        from_corpus = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        corpus = engine.compile(sequences)
        r1 = BaumWelchTrainer(max_iter=4, tol=0.0, engine=engine).fit(
            from_raw, sequences
        )
        r2 = BaumWelchTrainer(max_iter=4, tol=0.0, engine=engine).fit(
            from_corpus, corpus
        )
        np.testing.assert_array_equal(r1.history, r2.history)
        np.testing.assert_array_equal(from_raw.transmat, from_corpus.transmat)
        np.testing.assert_array_equal(from_raw.startprob, from_corpus.startprob)

    def test_fit_matches_log_reference_trainer(self):
        startprob, transmat, emissions, sequences = random_problem(9, lengths=(5, 8, 2, 11))
        fast_model = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        ref_model = HMM(startprob.copy(), transmat.copy(), emissions.copy())
        fast = BaumWelchTrainer(
            max_iter=6, tol=0.0, engine=InferenceEngine(backend="scaled", bucket_size=2)
        ).fit(fast_model, sequences)
        ref = BaumWelchTrainer(
            max_iter=6, tol=0.0, engine=InferenceEngine(backend="log")
        ).fit(ref_model, sequences)
        np.testing.assert_allclose(fast.history, ref.history, rtol=1e-9, atol=1e-8)
        np.testing.assert_allclose(fast_model.transmat, ref_model.transmat, atol=ATOL)
        np.testing.assert_allclose(
            fast_model.emissions.emission_probs,
            ref_model.emissions.emission_probs,
            atol=ATOL,
        )

    def test_model_corpus_helpers(self):
        startprob, transmat, emissions, sequences = random_problem(10)
        model = HMM(startprob, transmat, emissions)
        corpus = model.compile(sequences)
        paths = model.predict_corpus(corpus)
        want_paths = model.predict(sequences)
        for got, want in zip(paths, want_paths):
            np.testing.assert_array_equal(got, want)
        assert abs(model.score_corpus(corpus) - model.score(sequences)) < 1e-8
