"""Unit tests for state alignment between learned and reference models."""

import numpy as np
import pytest

from repro.datasets.toy import toy_ground_truth_model
from repro.exceptions import ValidationError
from repro.experiments.alignment import (
    align_model_to_reference,
    emission_alignment_permutation,
    permute_model_parameters,
    transition_alignment_permutation,
)
from repro.hmm.emissions import CategoricalEmission, GaussianEmission
from repro.hmm.model import HMM


class TestPermutations:
    def test_emission_alignment_recovers_known_permutation(self):
        reference = np.array([1.0, 2.0, 3.0, 4.0])
        perm = np.array([2, 0, 3, 1])
        learned = reference[perm]
        recovered = emission_alignment_permutation(learned, reference)
        assert np.array_equal(learned[recovered], reference)

    def test_transition_alignment_recovers_known_permutation(self):
        reference = toy_ground_truth_model().transmat
        perm = np.array([4, 2, 0, 1, 3])
        # A state relabeling permutes rows and columns simultaneously.
        learned = reference[np.ix_(perm, perm)]
        recovered = transition_alignment_permutation(learned, reference)
        assert np.allclose(learned[np.ix_(recovered, recovered)], reference)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            emission_alignment_permutation(np.zeros(3), np.zeros(4))
        with pytest.raises(ValidationError):
            transition_alignment_permutation(np.eye(3), np.eye(4))


class TestPermuteModelParameters:
    def test_gaussian_model_roundtrip(self):
        model = toy_ground_truth_model()
        perm = np.array([3, 1, 4, 0, 2])
        permuted = permute_model_parameters(model, perm)
        assert np.allclose(permuted.startprob, model.startprob[perm])
        assert np.allclose(permuted.emissions.means, model.emissions.means[perm])
        assert np.allclose(permuted.transmat, model.transmat[np.ix_(perm, perm)])

    def test_categorical_model_permutation(self):
        emissions = CategoricalEmission(np.array([[0.9, 0.1], [0.2, 0.8]]))
        model = HMM(np.array([0.5, 0.5]), np.array([[0.7, 0.3], [0.4, 0.6]]), emissions)
        permuted = permute_model_parameters(model, np.array([1, 0]))
        assert np.allclose(permuted.emissions.emission_probs[0], [0.2, 0.8])

    def test_invalid_permutation_raises(self):
        model = toy_ground_truth_model()
        with pytest.raises(ValidationError):
            permute_model_parameters(model, np.array([0, 0, 1, 2, 3]))


class TestAlignModelToReference:
    def test_alignment_by_emissions_orders_means(self):
        reference = toy_ground_truth_model()
        shuffled = permute_model_parameters(reference, np.array([4, 3, 2, 1, 0]))
        aligned = align_model_to_reference(shuffled, reference, by="emissions")
        assert np.allclose(aligned.emissions.means, reference.emissions.means)
        assert np.allclose(aligned.transmat, reference.transmat)

    def test_alignment_by_transitions(self):
        reference = toy_ground_truth_model()
        shuffled = permute_model_parameters(reference, np.array([1, 2, 3, 4, 0]))
        aligned = align_model_to_reference(shuffled, reference, by="transitions")
        assert np.allclose(aligned.transmat, reference.transmat)

    def test_unknown_criterion_raises(self):
        reference = toy_ground_truth_model()
        with pytest.raises(ValidationError):
            align_model_to_reference(reference, reference, by="volume")

    def test_emission_alignment_requires_gaussians(self):
        emissions = CategoricalEmission(np.array([[0.5, 0.5], [0.5, 0.5]]))
        model = HMM(np.array([0.5, 0.5]), np.full((2, 2), 0.5), emissions)
        with pytest.raises(ValidationError):
            align_model_to_reference(model, model, by="emissions")
