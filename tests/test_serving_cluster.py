"""Multi-process serving: worker fan-out, balancer failover, sticky streams."""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import (
    ClusterServer,
    ModelRegistry,
    StreamingDecoder,
    reuse_port_supported,
)


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _wait_until(predicate, timeout=45.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _url(cluster, path):
    return f"http://{cluster.host}:{cluster.port}{path}"


def _get(cluster, path):
    with urllib.request.urlopen(_url(cluster, path), timeout=15) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


def _post(cluster, path, payload=None, headers=None):
    request = urllib.request.Request(
        _url(cluster, path),
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


@pytest.fixture(scope="module")
def models():
    return {"alpha": _random_hmm(0)}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory, models):
    """A two-worker cluster in balancer mode (deterministic routing)."""
    root = tmp_path_factory.mktemp("cluster") / "registry"
    registry = ModelRegistry(root)
    for name, model in models.items():
        registry.save(name, model)
    server = ClusterServer(
        registry, port=0, n_workers=2, reuse_port=False, warm_up=["alpha"]
    )
    server.start()
    yield server
    server.close()


class TestClusterServing:
    def test_two_workers_come_up(self, cluster):
        assert len(cluster.worker_pids) == 2
        status, payload, _ = _get(cluster, "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_tag_through_the_cluster(self, cluster, models):
        sequence = [0, 3, 1, 2, 4, 1]
        status, payload, headers = _post(
            cluster, "/v1/models/alpha/tag", {"sequence": sequence}
        )
        assert status == 200
        want = models["alpha"].decode(np.asarray(sequence))
        assert payload["tags"] == [int(s) for s in want]
        assert headers.get("X-Trace-Id")

    def test_inbound_trace_id_survives_the_balancer_hop(self, cluster):
        _, _, headers = _post(
            cluster,
            "/v1/models/alpha/tag",
            {"sequence": [0, 1, 2]},
            headers={"X-Trace-Id": "relay-check-123"},
        )
        assert headers["X-Trace-Id"] == "relay-check-123"

    def test_round_robin_spreads_traffic_across_workers(self, cluster):
        for _ in range(8):
            _post(cluster, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]})
        # stats are per worker; two consecutive scrapes land on the two
        # round-robin backends, and both must have served something
        scrapes = [_get(cluster, "/metrics")[1] for _ in range(2)]
        counts = [scrape["router"]["n_requests"] for scrape in scrapes]
        assert all(count >= 1 for count in counts)
        assert sum(counts) >= 8

    def test_metrics_report_percentiles_per_worker(self, cluster):
        for _ in range(4):
            _post(cluster, "/v1/models/alpha/tag", {"sequence": [0, 1, 2, 3]})
        _, payload, _ = _get(cluster, "/metrics")
        latency = payload["router"]["latency"]
        assert latency["count"] >= 1
        assert latency["p50_ms"] is not None and latency["p99_ms"] is not None

    def test_stream_session_is_sticky_across_pushes(self, cluster, models):
        """Every push of one stream must reach the worker that owns the
        session — a misrouted push would 404 on the other worker."""
        observations = [0, 3, 1, 2, 4, 1, 5, 2]
        _, opened, _ = _post(cluster, "/v1/streams", {"model": "alpha", "lag": 3})
        stream_id = opened["stream_id"]
        finalized = []
        for obs in observations:
            status, step, _ = _post(
                cluster, f"/v1/streams/{stream_id}/push", {"observation": obs}
            )
            assert status == 200
            finalized.extend(step["finalized"])
        _, final, _ = _post(cluster, f"/v1/streams/{stream_id}/finish")
        decoder = StreamingDecoder(models["alpha"], lag=3)
        decoder.push_many(np.asarray(observations))
        want = decoder.finish()
        assert final["path"] == [int(s) for s in want.path]
        # the sticky entry is dropped on finish: further pushes are 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(cluster, f"/v1/streams/{stream_id}/push", {"observation": 0})
        assert excinfo.value.code == 404

    def test_killed_worker_is_respawned_and_traffic_continues(self, cluster):
        """SIGKILL one worker mid-flight: the balancer fails requests over
        to the survivor and the monitor respawns the dead worker."""
        pids_before = cluster.worker_pids
        assert len(pids_before) == 2
        victim = pids_before[0]
        os.kill(victim, signal.SIGKILL)
        # traffic keeps flowing while one worker is down
        for _ in range(5):
            status, _, _ = _post(
                cluster, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]}
            )
            assert status == 200
        assert _wait_until(lambda: cluster.n_restarts >= 1)
        assert _wait_until(lambda: len(cluster.worker_pids) == 2)
        assert victim not in cluster.worker_pids
        # the respawned worker eventually takes traffic again
        status, _, _ = _post(cluster, "/v1/models/alpha/tag", {"sequence": [1, 2]})
        assert status == 200


class TestClusterLifecycle:
    def test_n_workers_validated(self, tmp_path):
        with pytest.raises(ValidationError, match="n_workers"):
            ClusterServer(tmp_path / "registry", n_workers=0)

    def test_reuse_port_detection_is_a_bool(self):
        assert reuse_port_supported() in (True, False)


@pytest.mark.skipif(
    not reuse_port_supported(), reason="platform lacks SO_REUSEPORT"
)
class TestReusePortMode:
    def test_kernel_balanced_workers_share_one_port(self, tmp_path, models):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("alpha", models["alpha"])
        cluster = ClusterServer(
            registry, port=0, n_workers=2, reuse_port=True, warm_up=["alpha"]
        )
        cluster.start()
        try:
            assert cluster.reuse_port is True
            assert len(cluster.worker_pids) == 2
            sequence = [0, 1, 2, 3]
            want = [int(s) for s in models["alpha"].decode(np.asarray(sequence))]
            for _ in range(4):
                status, payload, headers = _post(
                    cluster, "/v1/models/alpha/tag", {"sequence": sequence}
                )
                assert status == 200
                assert payload["tags"] == want
                assert headers.get("X-Trace-Id")
            status, payload, _ = _get(cluster, "/healthz")
            assert status == 200 and payload["status"] == "ok"
        finally:
            cluster.close()
            cluster.close()  # idempotent
        with pytest.raises(urllib.error.URLError):
            _get(cluster, "/healthz")
