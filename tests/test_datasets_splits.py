"""Unit tests for cross-validation splitting."""

import numpy as np
import pytest

from repro.datasets.splits import k_fold_indices, train_test_split_indices
from repro.exceptions import ValidationError


class TestKFoldIndices:
    def test_folds_partition_all_items(self):
        splits = k_fold_indices(53, n_folds=10, seed=0)
        assert len(splits) == 10
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(53))

    def test_train_and_test_are_disjoint_and_complete(self):
        for train, test in k_fold_indices(30, n_folds=5, seed=1):
            assert set(train.tolist()).isdisjoint(test.tolist())
            assert sorted(train.tolist() + test.tolist()) == list(range(30))

    def test_fold_sizes_are_balanced(self):
        splits = k_fold_indices(100, n_folds=10, seed=2)
        sizes = [len(test) for _, test in splits]
        assert max(sizes) - min(sizes) <= 1

    def test_reproducible_with_seed(self):
        a = k_fold_indices(20, n_folds=4, seed=3)
        b = k_fold_indices(20, n_folds=4, seed=3)
        assert all(np.array_equal(x[1], y[1]) for x, y in zip(a, b))

    def test_no_shuffle_keeps_order(self):
        splits = k_fold_indices(10, n_folds=5, shuffle=False)
        assert splits[0][1].tolist() == [0, 1]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            k_fold_indices(1, n_folds=2)
        with pytest.raises(ValidationError):
            k_fold_indices(10, n_folds=1)
        with pytest.raises(ValidationError):
            k_fold_indices(10, n_folds=11)


class TestTrainTestSplit:
    def test_partition_and_sizes(self):
        train, test = train_test_split_indices(50, test_fraction=0.2, seed=0)
        assert len(test) == 10
        assert len(train) == 40
        assert set(train.tolist()).isdisjoint(test.tolist())

    def test_at_least_one_item_each_side(self):
        train, test = train_test_split_indices(3, test_fraction=0.01, seed=0)
        assert len(test) >= 1
        assert len(train) >= 1

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValidationError):
            train_test_split_indices(10, test_fraction=0.0)
        with pytest.raises(ValidationError):
            train_test_split_indices(10, test_fraction=1.0)

    def test_invalid_size_raises(self):
        with pytest.raises(ValidationError):
            train_test_split_indices(1)
