"""Streaming decode: fixed-lag Viterbi and filtering-posterior equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.hmm import HMM, CategoricalEmission, GaussianEmission
from repro.hmm.forward_backward import log_forward
from repro.hmm.viterbi import viterbi_decode
from repro.core.config import ServingConfig, set_serving_config
from repro.serving import StreamingDecoder, StreamPool, stream_decode
from repro.utils.maths import logsumexp, normalize_log_probabilities, safe_log


def _random_hmm(seed, n_states=4, n_symbols=6):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _reference_viterbi(model, obs):
    """Full-sequence log-domain Viterbi — bit-identical arithmetic to the
    streaming session, so path equality is exact (no cross-domain ties)."""
    path, _ = viterbi_decode(
        model.startprob, model.transmat, model.emissions.log_likelihoods(obs)
    )
    return path


class TestFixedLagViterbiEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 30))
    def test_lag_at_least_t_equals_full_viterbi(self, seed, length):
        """With lag >= T the streamed path is the exact batch Viterbi path."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        result = stream_decode(model, obs, lag=length + int(np.random.default_rng(seed).integers(0, 5)))
        assert np.array_equal(result.path, _reference_viterbi(model, obs))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 30))
    def test_infinite_lag_equals_full_viterbi(self, seed, length):
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        result = stream_decode(model, obs, lag=None)
        assert np.array_equal(result.path, _reference_viterbi(model, obs))
        # and the scaled batch engine agrees on the joint probability
        scaled_path = model.decode(obs)
        log_obs = model.emissions.log_likelihoods(obs)
        idx = np.arange(len(obs) - 1)
        def joint(path):
            return (
                safe_log(model.startprob)[path[0]]
                + safe_log(model.transmat)[path[idx], path[idx + 1]].sum()
                + log_obs[np.arange(len(obs)), path].sum()
            )
        np.testing.assert_allclose(joint(result.path), joint(scaled_path), atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 25), lag=st.integers(1, 30))
    def test_small_lag_emits_exactly_one_label_per_token(self, seed, length, lag):
        """Any lag yields a complete, in-order path over valid states."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        result = stream_decode(model, np.asarray(obs), lag=lag)
        assert result.path.shape == (length,)
        assert np.all((result.path >= 0) & (result.path < model.n_states))

    def test_labels_finalize_exactly_lag_steps_behind(self):
        model = _random_hmm(7)
        _, obs = model.sample(12, seed=7)
        decoder = StreamingDecoder(model, lag=3)
        for t, token in enumerate(np.asarray(obs)):
            step = decoder.push(token)
            if t < 3:
                assert step.finalized == []
            else:
                assert [position for position, _ in step.finalized] == [t - 3]
        remaining = decoder.finish()
        assert remaining.path.shape == (12,)
        # positions 0..8 were finalized online, 9..11 at finish
        assert decoder.n_tokens == 12


class TestFilteringPosteriors:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 25))
    def test_matches_log_reference_forward_at_1e8(self, seed, length):
        """Per-step filtering == normalized log-domain forward messages."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        log_obs = model.emissions.log_likelihoods(obs)
        log_alpha = log_forward(
            safe_log(model.startprob), safe_log(model.transmat), log_obs
        )
        reference = normalize_log_probabilities(log_alpha, axis=1)

        result = stream_decode(model, obs, lag=None)
        np.testing.assert_allclose(result.filtering, reference, atol=1e-8, rtol=0)
        np.testing.assert_allclose(
            result.log_likelihood, float(logsumexp(log_alpha[-1])), atol=1e-8
        )
        assert np.allclose(result.filtering.sum(axis=1), 1.0, atol=1e-12)

    def test_running_log_likelihood_is_monotone_in_information(self):
        """Each prefix likelihood equals the batch engine's on that prefix."""
        model = _random_hmm(11)
        _, obs = model.sample(10, seed=11)
        obs = np.asarray(obs)
        decoder = StreamingDecoder(model, lag=None)
        for t, token in enumerate(obs):
            step = decoder.push(token)
            assert step.log_likelihood == pytest.approx(
                model.log_likelihood(obs[: t + 1]), abs=1e-8
            )


class TestStreamingDecoderApi:
    def test_gaussian_stream(self):
        rng = np.random.default_rng(0)
        model = HMM(
            rng.dirichlet(np.ones(3)),
            rng.dirichlet(np.ones(3), size=3),
            GaussianEmission(np.array([-1.0, 0.0, 1.0]), np.ones(3)),
        )
        _, obs = model.sample(8, seed=0)
        result = stream_decode(model, np.asarray(obs), lag=2)
        assert result.path.shape == (8,)

    def test_default_lag_comes_from_serving_config(self):
        model = _random_hmm(0)
        previous = set_serving_config(ServingConfig(streaming_lag=5))
        try:
            decoder = StreamingDecoder(model)
            assert decoder._session.lag == 5
        finally:
            set_serving_config(previous)

    def test_stream_decode_honors_configured_default_lag(self):
        """Regression: ``stream_decode`` without ``lag`` must follow
        ``ServingConfig.streaming_lag``, not silently use infinite lag.

        Uses a (model, sequence) pair where the fixed-lag path genuinely
        differs from the full-sequence Viterbi path, so the default being
        forwarded as ``None`` is observable in the output.
        """
        found = None
        for seed in range(300):
            model = _random_hmm(seed)
            _, obs = model.sample(30, seed=seed)
            obs = np.asarray(obs)
            lagged = stream_decode(model, obs, lag=2).path
            infinite = stream_decode(model, obs, lag=None).path
            if not np.array_equal(lagged, infinite):
                found = (model, obs, lagged, infinite)
                break
        assert found is not None, "no lag-sensitive example found"
        model, obs, lagged, infinite = found
        previous = set_serving_config(ServingConfig(streaming_lag=2))
        try:
            defaulted = stream_decode(model, obs).path
        finally:
            set_serving_config(previous)
        assert np.array_equal(defaulted, lagged)
        assert not np.array_equal(defaulted, infinite)

    def test_finish_without_tokens_raises(self):
        decoder = StreamingDecoder(_random_hmm(0), lag=None)
        with pytest.raises(ValidationError):
            decoder.finish()

    def test_step_after_finish_raises(self):
        model = _random_hmm(0)
        session = model.stream()
        session.step(model.emissions.log_likelihoods(np.array([0]))[0])
        session.finish()
        with pytest.raises(ValidationError):
            session.step(model.emissions.log_likelihoods(np.array([0]))[0])

    def test_invalid_lag_rejected(self):
        with pytest.raises(ValidationError):
            _random_hmm(0).stream(lag=0)

    def test_keep_history_false_bounds_retention(self):
        model = _random_hmm(5)
        _, obs = model.sample(20, seed=5)
        obs = np.asarray(obs)
        full = stream_decode(model, obs, lag=4)

        decoder = StreamingDecoder(model, lag=4, keep_history=False)
        online = []
        for token in obs:
            online.extend(decoder.push(token).finalized)
        assert decoder._state.steps == []  # nothing retained
        tail = decoder.finish()
        # online finalizations + the final window together cover the stream
        # and agree with the history-keeping decoder's result.
        labels = [state for _, state in online] + list(tail.path)
        assert len(labels) == 20
        assert np.array_equal(np.array(labels), full.path)
        # no retained posteriors in bounded mode: empty, not mismatched
        assert tail.filtering.shape == (0, model.n_states)
        assert tail.log_likelihood == pytest.approx(full.log_likelihood, abs=1e-12)

    def test_partial_finalized_labels_are_a_path_prefix(self):
        model = _random_hmm(3)
        _, obs = model.sample(15, seed=3)
        decoder = StreamingDecoder(model, lag=4)
        decoder.push_many(np.asarray(obs))
        online_prefix = list(decoder.finalized_labels)
        assert len(online_prefix) == 15 - 4
        result = decoder.finish()
        assert list(result.path[: len(online_prefix)]) == online_prefix


class TestStreamPool:
    def test_pooled_streams_match_dedicated_decoders(self):
        """Per-stream pool output is bit-identical to StreamingDecoder."""
        model = _random_hmm(2)
        lags = [1, 3, 8, None]
        lengths = [25, 18, 9, 25]
        observations = [
            np.asarray(model.sample(T, seed=10 + i)[1])
            for i, T in enumerate(lengths)
        ]
        pool = StreamPool(model)
        streams = [pool.open(lag=lag) for lag in lags]
        pooled_steps = [[] for _ in streams]
        for t in range(max(lengths)):
            items = [
                (streams[i], observations[i][t])
                for i in range(len(streams))
                if t < lengths[i]
            ]
            ids = [i for i in range(len(streams)) if t < lengths[i]]
            for i, step in zip(ids, pool.push_tick(items)):
                pooled_steps[i].append(step)
        results = [stream.finish() for stream in streams]

        for i, (lag, obs) in enumerate(zip(lags, observations)):
            decoder = StreamingDecoder(model, lag=lag)
            reference_steps = decoder.push_many(obs)
            reference = decoder.finish()
            for got, want in zip(pooled_steps[i], reference_steps):
                assert got.t == want.t
                assert np.array_equal(got.filtering, want.filtering)
                assert got.log_likelihood == want.log_likelihood
                assert got.finalized == want.finalized
            assert np.array_equal(results[i].path, reference.path)
            assert np.array_equal(results[i].filtering, reference.filtering)
            assert results[i].log_likelihood == reference.log_likelihood

    def test_single_push_and_counters(self):
        model = _random_hmm(4)
        _, obs = model.sample(6, seed=4)
        obs = np.asarray(obs)
        pool = StreamPool(model, lag=2)
        stream = pool.open()
        assert pool.n_streams == 1
        for token in obs:
            stream.push(token)
        assert stream.n_tokens == 6
        result = stream.finish()
        assert pool.n_streams == 0
        decoder = StreamingDecoder(model, lag=2)
        decoder.push_many(obs)
        assert np.array_equal(result.path, decoder.finish().path)

    def test_default_lag_comes_from_serving_config(self):
        model = _random_hmm(0)
        previous = set_serving_config(ServingConfig(streaming_lag=7))
        try:
            pool = StreamPool(model)
            stream = pool.open()
            assert pool._session._slots[stream._slot].lag == 7
        finally:
            set_serving_config(previous)

    def test_slot_reuse_after_finish(self):
        model = _random_hmm(1)
        _, obs = model.sample(5, seed=1)
        obs = np.asarray(obs)
        pool = StreamPool(model, lag=None)
        first = pool.open()
        for token in obs:
            first.push(token)
        first_result = first.finish()
        fresh = pool.open()  # reuses the freed slot
        for token in obs:
            fresh.push(token)
        assert np.array_equal(fresh.finish().path, first_result.path)

    def test_push_to_finished_stream_raises(self):
        model = _random_hmm(1)
        pool = StreamPool(model, lag=None)
        stream = pool.open()
        stream.push(0)
        stream.finish()
        with pytest.raises(ValidationError, match="finished"):
            stream.push(0)
        with pytest.raises(ValidationError, match="finished"):
            stream.finish()

    def test_foreign_stream_rejected(self):
        model = _random_hmm(1)
        pool_a, pool_b = StreamPool(model, lag=None), StreamPool(model, lag=None)
        stream = pool_a.open()
        with pytest.raises(ValidationError, match="different pool"):
            pool_b.push_tick([(stream, 0)])

    def test_finish_without_tokens_raises(self):
        pool = StreamPool(_random_hmm(0), lag=None)
        with pytest.raises(ValidationError, match="no observations"):
            pool.open().finish()

    def test_keep_history_false_bounds_retention(self):
        model = _random_hmm(6)
        _, obs = model.sample(20, seed=6)
        obs = np.asarray(obs)
        full = stream_decode(model, obs, lag=4)
        pool = StreamPool(model, lag=4, keep_history=False)
        stream = pool.open()
        online = []
        for token in obs:
            online.extend(stream.push(token).finalized)
        assert stream._state.steps == []  # nothing retained
        tail = stream.finish()
        labels = [state for _, state in online] + list(tail.path)
        assert np.array_equal(np.array(labels), full.path)
        assert tail.filtering.shape == (0, model.n_states)


class TestPushWave:
    def test_wave_matches_per_token_pushes(self):
        """push_wave is bit-identical to the equivalent push loop."""
        model = _random_hmm(3)
        _, obs = model.sample(24, seed=3)
        obs = np.asarray(obs)
        wave_pool, loop_pool = StreamPool(model, lag=4), StreamPool(model, lag=4)
        wave_stream, loop_stream = wave_pool.open(), loop_pool.open()
        wave_steps = []
        for start in range(0, len(obs), 8):
            wave_steps.extend(wave_stream.push_wave(obs[start : start + 8]))
        loop_steps = [loop_stream.push(token) for token in obs]
        assert len(wave_steps) == len(loop_steps)
        for got, want in zip(wave_steps, loop_steps):
            assert got.t == want.t
            assert np.array_equal(got.filtering, want.filtering)
            assert got.log_likelihood == want.log_likelihood
            assert got.finalized == want.finalized
        wave_result, loop_result = wave_stream.finish(), loop_stream.finish()
        assert np.array_equal(wave_result.path, loop_result.path)
        assert wave_result.log_likelihood == loop_result.log_likelihood
        assert wave_stream.n_tokens == len(obs)

    def test_wave_interleaves_with_other_streams(self):
        """A wave on one stream leaves a sibling stream's output untouched."""
        model = _random_hmm(5)
        _, wave_obs = model.sample(12, seed=5)
        _, tick_obs = model.sample(6, seed=6)
        wave_obs, tick_obs = np.asarray(wave_obs), np.asarray(tick_obs)
        pool = StreamPool(model, lag=3)
        wavy, ticky = pool.open(), pool.open()
        wavy.push_wave(wave_obs[:6])
        for token in tick_obs:
            ticky.push(token)
        wavy.push_wave(wave_obs[6:])
        for stream, obs in ((wavy, wave_obs), (ticky, tick_obs)):
            decoder = StreamingDecoder(model, lag=3)
            decoder.push_many(obs)
            assert np.array_equal(stream.finish().path, decoder.finish().path)

    def test_empty_wave_rejected(self):
        pool = StreamPool(_random_hmm(0), lag=2)
        with pytest.raises(ValidationError, match="at least one"):
            pool.open().push_wave([])

    def test_wave_to_finished_stream_raises(self):
        pool = StreamPool(_random_hmm(0), lag=2)
        stream = pool.open()
        stream.push(0)
        stream.finish()
        with pytest.raises(ValidationError, match="finished"):
            stream.push_wave([0, 1])
