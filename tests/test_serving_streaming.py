"""Streaming decode: fixed-lag Viterbi and filtering-posterior equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.hmm import HMM, CategoricalEmission, GaussianEmission
from repro.hmm.forward_backward import log_forward
from repro.hmm.viterbi import viterbi_decode
from repro.serving import StreamingDecoder, stream_decode
from repro.utils.maths import logsumexp, normalize_log_probabilities, safe_log


def _random_hmm(seed, n_states=4, n_symbols=6):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _reference_viterbi(model, obs):
    """Full-sequence log-domain Viterbi — bit-identical arithmetic to the
    streaming session, so path equality is exact (no cross-domain ties)."""
    path, _ = viterbi_decode(
        model.startprob, model.transmat, model.emissions.log_likelihoods(obs)
    )
    return path


class TestFixedLagViterbiEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 30))
    def test_lag_at_least_t_equals_full_viterbi(self, seed, length):
        """With lag >= T the streamed path is the exact batch Viterbi path."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        result = stream_decode(model, obs, lag=length + int(np.random.default_rng(seed).integers(0, 5)))
        assert np.array_equal(result.path, _reference_viterbi(model, obs))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 30))
    def test_infinite_lag_equals_full_viterbi(self, seed, length):
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        result = stream_decode(model, obs, lag=None)
        assert np.array_equal(result.path, _reference_viterbi(model, obs))
        # and the scaled batch engine agrees on the joint probability
        scaled_path = model.decode(obs)
        log_obs = model.emissions.log_likelihoods(obs)
        idx = np.arange(len(obs) - 1)
        def joint(path):
            return (
                safe_log(model.startprob)[path[0]]
                + safe_log(model.transmat)[path[idx], path[idx + 1]].sum()
                + log_obs[np.arange(len(obs)), path].sum()
            )
        np.testing.assert_allclose(joint(result.path), joint(scaled_path), atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 25), lag=st.integers(1, 30))
    def test_small_lag_emits_exactly_one_label_per_token(self, seed, length, lag):
        """Any lag yields a complete, in-order path over valid states."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        result = stream_decode(model, np.asarray(obs), lag=lag)
        assert result.path.shape == (length,)
        assert np.all((result.path >= 0) & (result.path < model.n_states))

    def test_labels_finalize_exactly_lag_steps_behind(self):
        model = _random_hmm(7)
        _, obs = model.sample(12, seed=7)
        decoder = StreamingDecoder(model, lag=3)
        for t, token in enumerate(np.asarray(obs)):
            step = decoder.push(token)
            if t < 3:
                assert step.finalized == []
            else:
                assert [position for position, _ in step.finalized] == [t - 3]
        remaining = decoder.finish()
        assert remaining.path.shape == (12,)
        # positions 0..8 were finalized online, 9..11 at finish
        assert decoder.n_tokens == 12


class TestFilteringPosteriors:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), length=st.integers(1, 25))
    def test_matches_log_reference_forward_at_1e8(self, seed, length):
        """Per-step filtering == normalized log-domain forward messages."""
        model = _random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)
        log_obs = model.emissions.log_likelihoods(obs)
        log_alpha = log_forward(
            safe_log(model.startprob), safe_log(model.transmat), log_obs
        )
        reference = normalize_log_probabilities(log_alpha, axis=1)

        result = stream_decode(model, obs, lag=None)
        np.testing.assert_allclose(result.filtering, reference, atol=1e-8, rtol=0)
        np.testing.assert_allclose(
            result.log_likelihood, float(logsumexp(log_alpha[-1])), atol=1e-8
        )
        assert np.allclose(result.filtering.sum(axis=1), 1.0, atol=1e-12)

    def test_running_log_likelihood_is_monotone_in_information(self):
        """Each prefix likelihood equals the batch engine's on that prefix."""
        model = _random_hmm(11)
        _, obs = model.sample(10, seed=11)
        obs = np.asarray(obs)
        decoder = StreamingDecoder(model, lag=None)
        for t, token in enumerate(obs):
            step = decoder.push(token)
            assert step.log_likelihood == pytest.approx(
                model.log_likelihood(obs[: t + 1]), abs=1e-8
            )


class TestStreamingDecoderApi:
    def test_gaussian_stream(self):
        rng = np.random.default_rng(0)
        model = HMM(
            rng.dirichlet(np.ones(3)),
            rng.dirichlet(np.ones(3), size=3),
            GaussianEmission(np.array([-1.0, 0.0, 1.0]), np.ones(3)),
        )
        _, obs = model.sample(8, seed=0)
        result = stream_decode(model, np.asarray(obs), lag=2)
        assert result.path.shape == (8,)

    def test_default_lag_comes_from_serving_config(self):
        from repro.core.config import ServingConfig, set_serving_config

        model = _random_hmm(0)
        previous = set_serving_config(ServingConfig(streaming_lag=5))
        try:
            decoder = StreamingDecoder(model)
            assert decoder._session.lag == 5
        finally:
            set_serving_config(previous)

    def test_finish_without_tokens_raises(self):
        decoder = StreamingDecoder(_random_hmm(0), lag=None)
        with pytest.raises(ValidationError):
            decoder.finish()

    def test_step_after_finish_raises(self):
        model = _random_hmm(0)
        session = model.stream()
        session.step(model.emissions.log_likelihoods(np.array([0]))[0])
        session.finish()
        with pytest.raises(ValidationError):
            session.step(model.emissions.log_likelihoods(np.array([0]))[0])

    def test_invalid_lag_rejected(self):
        with pytest.raises(ValidationError):
            _random_hmm(0).stream(lag=0)

    def test_keep_history_false_bounds_retention(self):
        model = _random_hmm(5)
        _, obs = model.sample(20, seed=5)
        obs = np.asarray(obs)
        full = stream_decode(model, obs, lag=4)

        decoder = StreamingDecoder(model, lag=4, keep_history=False)
        online = []
        for token in obs:
            online.extend(decoder.push(token).finalized)
        assert decoder._state.steps == []  # nothing retained
        tail = decoder.finish()
        # online finalizations + the final window together cover the stream
        # and agree with the history-keeping decoder's result.
        labels = [state for _, state in online] + list(tail.path)
        assert len(labels) == 20
        assert np.array_equal(np.array(labels), full.path)
        # no retained posteriors in bounded mode: empty, not mismatched
        assert tail.filtering.shape == (0, model.n_states)
        assert tail.log_likelihood == pytest.approx(full.log_likelihood, abs=1e-12)

    def test_partial_finalized_labels_are_a_path_prefix(self):
        model = _random_hmm(3)
        _, obs = model.sample(15, seed=3)
        decoder = StreamingDecoder(model, lag=4)
        decoder.push_many(np.asarray(obs))
        online_prefix = list(decoder.finalized_labels)
        assert len(online_prefix) == 15 - 4
        result = decoder.finish()
        assert list(result.path[: len(online_prefix)]) == online_prefix
