"""Unit tests for the V-measure clustering metric."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.clustering import v_measure


class TestVMeasure:
    def test_perfect_labeling_scores_one(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert np.isclose(v_measure(labels, labels), 1.0)

    def test_permuted_labeling_scores_one(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([1, 1, 0, 0])
        assert np.isclose(v_measure(true, pred), 1.0)

    def test_single_cluster_prediction_scores_low(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.zeros(6, dtype=int)
        assert v_measure(true, pred) < 0.1

    def test_matches_sklearn_formula_on_example(self):
        # Hand-checked example: homogeneity/completeness formulas.
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        # Splitting both classes evenly carries no information: V = 0.
        assert np.isclose(v_measure(true, pred), 0.0, atol=1e-10)

    def test_accepts_lists_of_sequences(self):
        true = [np.array([0, 0]), np.array([1, 1])]
        pred = [np.array([1, 1]), np.array([0, 0])]
        assert np.isclose(v_measure(true, pred), 1.0)

    def test_value_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            true = rng.integers(0, 4, size=40)
            pred = rng.integers(0, 4, size=40)
            value = v_measure(true, pred)
            assert -1e-9 <= value <= 1.0 + 1e-9

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValidationError):
            v_measure(np.array([0, 1]), np.array([0]))

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            v_measure(np.array([], dtype=int), np.array([], dtype=int))
