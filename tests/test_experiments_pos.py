"""Tests for the PoS experiment harnesses (Table 2, Fig. 7-9)."""

import numpy as np
import pytest

from repro.experiments.pos import (
    corpus_statistics,
    fit_pos_model,
    run_pos_alpha_sweep,
    tag_frequency_histograms,
    transition_diversity_profile,
)


@pytest.fixture(scope="module")
def tiny_sweep(tiny_pos_corpus):
    return run_pos_alpha_sweep(
        corpus=tiny_pos_corpus, alphas=(0.0, 10.0), max_em_iter=4, seed=0
    )


class TestRunPosAlphaSweep:
    def test_sweep_covers_requested_alphas(self, tiny_sweep):
        assert np.allclose(tiny_sweep.alphas, [0.0, 10.0])
        assert tiny_sweep.accuracies.shape == (2,)
        assert len(tiny_sweep.models) == 2

    def test_accuracies_are_above_chance(self, tiny_sweep, tiny_pos_corpus):
        chance = 1.0 / tiny_pos_corpus.n_tags
        assert np.all(tiny_sweep.accuracies > chance)

    def test_baseline_accuracy_is_alpha_zero_entry(self, tiny_sweep):
        assert tiny_sweep.baseline_accuracy == tiny_sweep.accuracies[0]

    def test_best_alpha_and_accuracy_consistent(self, tiny_sweep):
        idx = int(np.argmax(tiny_sweep.accuracies))
        assert tiny_sweep.best_alpha == tiny_sweep.alphas[idx]
        assert tiny_sweep.best_accuracy == tiny_sweep.accuracies[idx]


class TestDiversityAndHistograms:
    def test_transition_diversity_profile_length(self, tiny_sweep, tiny_pos_corpus):
        profile = transition_diversity_profile(tiny_sweep.models[-1], reference_tag=0)
        assert profile.shape == (tiny_pos_corpus.n_tags - 1,)
        assert np.all(profile >= 0)

    def test_tag_frequency_histograms_cover_all_tokens(self, tiny_sweep, tiny_pos_corpus):
        hmm_model, dhmm_model = tiny_sweep.models[0], tiny_sweep.models[-1]
        histograms = tag_frequency_histograms(tiny_pos_corpus, hmm_model, dhmm_model)
        total = tiny_pos_corpus.n_tokens
        assert set(histograms) == {"ground_truth", "hmm", "dhmm"}
        for counts in histograms.values():
            assert counts.sum() == total

    def test_ground_truth_histogram_is_skewed(self, tiny_sweep, tiny_pos_corpus):
        histograms = tag_frequency_histograms(
            tiny_pos_corpus, tiny_sweep.models[0], tiny_sweep.models[-1]
        )
        gt = np.sort(histograms["ground_truth"])[::-1]
        assert gt[:4].sum() / gt.sum() > 0.5


class TestCorpusStatistics:
    def test_rows_are_sorted_by_frequency(self, tiny_pos_corpus):
        rows = corpus_statistics(tiny_pos_corpus)
        counts = [count for _, count, _ in rows]
        assert counts == sorted(counts, reverse=True)

    def test_fractions_sum_to_one(self, tiny_pos_corpus):
        rows = corpus_statistics(tiny_pos_corpus)
        assert np.isclose(sum(frac for _, _, frac in rows), 1.0)

    def test_all_tags_listed(self, tiny_pos_corpus):
        rows = corpus_statistics(tiny_pos_corpus)
        assert len(rows) == tiny_pos_corpus.n_tags


class TestFitPosModel:
    def test_alpha_zero_model_is_plain_hmm(self, tiny_pos_corpus):
        model = fit_pos_model(tiny_pos_corpus, alpha=0.0, max_em_iter=2, seed=0)
        assert model.alpha == 0.0
        assert model.transmat_.shape == (tiny_pos_corpus.n_tags, tiny_pos_corpus.n_tags)
