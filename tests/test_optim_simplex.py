"""Unit and property-based tests for the simplex projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.optim.simplex import project_rows_to_simplex, project_to_simplex


class TestProjectToSimplex:
    def test_point_already_on_simplex_unchanged(self):
        p = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(p), p)

    def test_uniform_projection_of_constant_vector(self):
        out = project_to_simplex(np.array([5.0, 5.0, 5.0, 5.0]))
        assert np.allclose(out, 0.25)

    def test_large_single_coordinate_becomes_vertex(self):
        out = project_to_simplex(np.array([10.0, 0.0, 0.0]))
        assert np.allclose(out, [1.0, 0.0, 0.0])

    def test_negative_entries_get_clipped(self):
        out = project_to_simplex(np.array([-1.0, 2.0]))
        assert np.allclose(out, [0.0, 1.0])

    def test_matches_scipy_qp_solution_on_example(self):
        # Known example: projecting (0.5, 0.9, -0.1) onto the simplex.
        v = np.array([0.5, 0.9, -0.1])
        out = project_to_simplex(v)
        # Optimality: out is feasible and no closer feasible point exists
        # among a dense sample of candidates.
        assert np.isclose(out.sum(), 1.0)
        rng = np.random.default_rng(0)
        candidates = rng.dirichlet(np.ones(3), size=2000)
        best = candidates[np.argmin(np.linalg.norm(candidates - v, axis=1))]
        assert np.linalg.norm(out - v) <= np.linalg.norm(best - v) + 1e-9

    def test_radius_parameter(self):
        out = project_to_simplex(np.array([1.0, 1.0]), radius=2.0)
        assert np.isclose(out.sum(), 2.0)

    def test_rejects_empty_vector(self):
        with pytest.raises(ValidationError):
            project_to_simplex(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            project_to_simplex(np.array([np.nan, 0.0]))

    def test_rejects_non_positive_radius(self):
        with pytest.raises(ValidationError):
            project_to_simplex(np.array([0.5, 0.5]), radius=0.0)

    @given(arrays(np.float64, (6,), elements=st.floats(-100, 100)))
    @settings(max_examples=100, deadline=None)
    def test_projection_is_feasible(self, v):
        out = project_to_simplex(v)
        assert np.all(out >= -1e-12)
        assert np.isclose(out.sum(), 1.0, atol=1e-9)

    @given(arrays(np.float64, (5,), elements=st.floats(-20, 20)))
    @settings(max_examples=100, deadline=None)
    def test_projection_is_idempotent(self, v):
        once = project_to_simplex(v)
        twice = project_to_simplex(once)
        assert np.allclose(once, twice, atol=1e-9)

    @given(
        arrays(np.float64, (5,), elements=st.floats(-20, 20)),
        arrays(np.float64, (5,), elements=st.floats(0.01, 1.0)),
    )
    @settings(max_examples=100, deadline=None)
    def test_projection_is_closest_among_random_feasible_points(self, v, w):
        out = project_to_simplex(v)
        feasible = w / w.sum()
        assert np.linalg.norm(out - v) <= np.linalg.norm(feasible - v) + 1e-9


class TestProjectRowsToSimplex:
    def test_matches_per_row_projection(self):
        rng = np.random.default_rng(1)
        M = rng.normal(size=(8, 5)) * 3
        rows = project_rows_to_simplex(M)
        for i in range(M.shape[0]):
            assert np.allclose(rows[i], project_to_simplex(M[i]), atol=1e-12)

    def test_output_is_row_stochastic(self):
        rng = np.random.default_rng(2)
        out = project_rows_to_simplex(rng.normal(size=(4, 7)))
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            project_rows_to_simplex(np.array([1.0, 2.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            project_rows_to_simplex(np.array([[np.nan, 1.0]]))

    @given(arrays(np.float64, (4, 6), elements=st.floats(-50, 50)))
    @settings(max_examples=60, deadline=None)
    def test_property_feasible_and_matches_single(self, M):
        out = project_rows_to_simplex(M)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)
        for i in range(M.shape[0]):
            assert np.allclose(out[i], project_to_simplex(M[i]), atol=1e-9)
