"""Observability: trace IDs, latency histograms, /metrics, Prometheus text."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving import HTTPServingServer, ModelRegistry
from repro.serving.observability import (
    LatencyHistogram,
    clean_trace_id,
    histogram_lines,
    new_trace_id,
    render_prometheus,
)
from repro.hmm import HMM, CategoricalEmission


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


class TestTraceIds:
    def test_minted_ids_are_url_safe_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            assert clean_trace_id(trace_id) == trace_id

    def test_well_formed_inbound_ids_pass(self):
        assert clean_trace_id("req-12_ABC") == "req-12_ABC"
        assert clean_trace_id("a") == "a"
        assert clean_trace_id("x" * 64) == "x" * 64

    @pytest.mark.parametrize(
        "candidate",
        [None, 5, b"bytes", "", "has space", "x" * 65, "evil\r\nX-Other: 1", "semi;colon"],
    )
    def test_malformed_inbound_ids_rejected(self, candidate):
        assert clean_trace_id(candidate) is None


class TestLatencyHistogram:
    def test_empty_histogram_has_no_percentiles(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] is None and snap["p99_ms"] is None
        assert snap["min_ms"] is None and snap["max_ms"] is None

    def test_single_sample_percentiles_clamp_to_the_observation(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["sum_seconds"] == pytest.approx(0.004)
        for key in ("min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert snap[key] == pytest.approx(4.0)

    def test_percentiles_are_monotone_and_bracketed(self):
        hist = LatencyHistogram()
        values = [0.0005 * (i + 1) for i in range(200)]  # 0.5 ms .. 100 ms
        for value in values:
            hist.record(value)
        snap = hist.snapshot()
        assert snap["count"] == 200
        assert snap["min_ms"] <= snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
        assert snap["p99_ms"] <= snap["max_ms"]
        # p50 of a uniform 0.5-100 ms spread must land mid-range, not at an edge
        assert 10.0 < snap["p50_ms"] < 90.0

    def test_negative_durations_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.min_value == 0.0
        assert hist.snapshot()["min_ms"] == 0.0

    def test_overflow_lands_in_the_inf_bucket(self):
        hist = LatencyHistogram()
        hist.record(1e6)  # beyond the largest finite bound
        snap = hist.snapshot()
        assert snap["buckets"][-1]["le_seconds"] == "+Inf"
        assert snap["buckets"][-1]["count"] == 1
        assert snap["buckets"][-2]["count"] == 0

    def test_bucket_counts_are_cumulative(self):
        hist = LatencyHistogram(bounds=[0.001, 0.01, 0.1])
        for value in (0.0005, 0.005, 0.005, 0.05):
            hist.record(value)
        counts = [bucket["count"] for bucket in hist.snapshot()["buckets"]]
        assert counts == [1, 3, 4, 4]

    def test_merge_matches_recording_everything_in_one(self):
        merged, reference = LatencyHistogram(), LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i in range(50):
            value = 0.0003 * (i + 1)
            (left if i % 2 else right).record(value)
            reference.record(value)
        merged.merge(left)
        merged.merge(right)
        assert merged.snapshot() == reference.snapshot()

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValidationError, match="different bounds"):
            LatencyHistogram().merge(LatencyHistogram(bounds=[0.1, 1.0]))

    @pytest.mark.parametrize("bounds", [[], [0.1, 0.01], [0.0, 0.1], [-1.0]])
    def test_invalid_bounds_rejected(self, bounds):
        with pytest.raises(ValidationError, match="bounds"):
            LatencyHistogram(bounds=bounds)


class TestPrometheusRendering:
    def test_histogram_exposition_shape(self):
        hist = LatencyHistogram(bounds=[0.001, 0.01])
        hist.record(0.0005)
        hist.record(0.005)
        lines = histogram_lines("m", {"component": "router"}, hist.snapshot())
        assert lines == [
            'm_bucket{component="router",le="0.001"} 1',
            'm_bucket{component="router",le="0.01"} 2',
            'm_bucket{component="router",le="+Inf"} 2',
            'm_sum{component="router"} 0.0055',
            'm_count{component="router"} 2',
        ]

    def test_type_headers_emitted_once_per_metric(self):
        hist = LatencyHistogram(bounds=[0.001])
        hist.record(0.0005)
        snap = hist.snapshot()
        text = render_prometheus(
            [("lat", {"worker": "0"}, snap), ("lat", {"worker": "1"}, snap)],
            [("reqs_total", {}, 2), ("reqs_total", {"worker": "0"}, 1)],
        )
        assert text.count("# TYPE lat histogram") == 1
        assert text.count("# TYPE reqs_total counter") == 1
        assert "reqs_total 2.0" in text
        assert 'reqs_total{worker="0"} 1.0' in text
        assert text.endswith("\n")


# ------------------------------------------------------------------ #
# End-to-end: trace IDs and /metrics over HTTP
# ------------------------------------------------------------------ #
@pytest.fixture(scope="module")
def models():
    return {"alpha": _random_hmm(0)}


@pytest.fixture(scope="module")
def server(tmp_path_factory, models):
    root = tmp_path_factory.mktemp("obs") / "registry"
    registry = ModelRegistry(root)
    for name, model in models.items():
        registry.save(name, model)
    with HTTPServingServer(registry, port=0) as server:
        yield server


def _url(server, path):
    return f"http://{server.host}:{server.port}{path}"


def _get(server, path, headers=None):
    request = urllib.request.Request(_url(server, path), headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read(), dict(response.headers)


def _post(server, path, payload=None, headers=None):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


class TestHTTPTraceIds:
    def test_every_response_carries_a_trace_id(self, server):
        _, _, headers = _post(server, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]})
        trace_id = headers.get("X-Trace-Id")
        assert clean_trace_id(trace_id) == trace_id

    def test_error_responses_carry_a_trace_id_too(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/no-such-route")
        assert excinfo.value.code == 404
        assert clean_trace_id(excinfo.value.headers.get("X-Trace-Id")) is not None

    def test_inbound_trace_id_is_adopted_and_visible_in_stats(self, server):
        trace_id = f"client-{new_trace_id()}"
        _, _, headers = _post(
            server,
            "/v1/models/alpha/tag",
            {"sequence": [0, 1, 2, 3]},
            headers={"X-Trace-Id": trace_id},
        )
        assert headers["X-Trace-Id"] == trace_id
        _, body, _ = _get(server, "/stats")
        traces = json.loads(body)["router"]["recent_traces"]
        match = [t for t in traces if t["trace_id"] == trace_id]
        assert len(match) == 1
        assert match[0]["kind"] == "tag"
        assert match[0]["model"] == "alpha:v0001"
        assert match[0]["latency_ms"] > 0.0
        assert match[0]["queue_wait_ms"] is not None

    def test_malformed_inbound_trace_id_is_replaced(self, server):
        _, _, headers = _post(
            server,
            "/v1/models/alpha/tag",
            {"sequence": [0, 1]},
            headers={"X-Trace-Id": "not a valid header!!"},
        )
        minted = headers["X-Trace-Id"]
        assert minted != "not a valid header!!"
        assert clean_trace_id(minted) == minted


class TestMetricsEndpoint:
    def test_json_metrics_report_percentiles_after_traffic(self, server):
        for _ in range(5):
            _post(server, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]})
        _, body, headers = _get(server, "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        metrics = json.loads(body)
        latency = metrics["router"]["latency"]
        assert latency["count"] >= 5
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert latency[key] is not None and latency[key] > 0.0
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        waits = metrics["router"]["queue_wait_by_policy"]
        assert "fifo" in waits and waits["fifo"]["count"] >= 5

    def test_prometheus_text_format(self, server):
        _post(server, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]})
        _, body, headers = _get(server, "/metrics?format=prometheus")
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_request_latency_seconds_bucket{component="router"' in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{component="router"} ' in text

    def test_stream_traffic_shows_up_with_traces(self, server):
        _, opened, _ = _post(server, "/v1/streams", {"model": "alpha"})
        stream_id = opened["stream_id"]
        trace_id = f"stream-{new_trace_id()}"
        _post(
            server,
            f"/v1/streams/{stream_id}/push",
            {"observation": 1},
            headers={"X-Trace-Id": trace_id},
        )
        _, body, _ = _get(server, "/metrics")
        streams = json.loads(body)["streams"]
        assert "alpha:v0001" in streams
        snap = streams["alpha:v0001"]
        assert snap["latency"]["count"] >= 1
        assert any(t["trace_id"] == trace_id for t in snap["recent_traces"])
