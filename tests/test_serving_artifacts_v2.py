"""Artifact schema v2 (compression + checksums), atomic writes, registry GC."""

import json

import numpy as np
import pytest

from repro.datasets.ocr import generate_ocr_dataset
from repro.core import SupervisedDiversifiedHMM
from repro.exceptions import ArtifactCorruptError, ValidationError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import ModelRegistry, Router, load_artifact, save_artifact
from repro.serving.persistence import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    _flatten,
    read_manifest,
    verify_checksums,
)


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _write_v1_artifact(model, path, model_type="hmm"):
    """Replicate the pre-v2 artifact layout: uncompressed, no checksums."""
    path.mkdir(parents=True, exist_ok=True)
    arrays = {}
    state = _flatten(model.to_state_dict(), "", arrays)
    with (path / ARRAYS_NAME).open("wb") as fh:
        np.savez(fh, **arrays)
    manifest = {
        "schema_version": 1,
        "model_type": model_type,
        "metadata": {},
        "state": state,
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


class TestSchemaV2:
    def test_manifest_records_payload_checksum(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m", schema_version=2)
        manifest = read_manifest(tmp_path / "m")
        assert manifest["schema_version"] == 2
        digest = manifest["checksums"][ARRAYS_NAME]
        assert len(digest) == 64 and int(digest, 16) >= 0
        assert verify_checksums(tmp_path / "m") is True

    def test_v2_smaller_than_v1_for_bernoulli_ocr_model(self, tmp_path):
        """The acceptance workload: a fitted Bernoulli OCR model's payload
        must shrink under compression."""
        data = generate_ocr_dataset(n_words=40, seed=0)
        model = SupervisedDiversifiedHMM(n_states=26, n_features=128)
        model.fit(data.images, data.labels)
        _write_v1_artifact(
            model, tmp_path / "v1", model_type="supervised_diversified_hmm"
        )
        save_artifact(model, tmp_path / "v2", schema_version=2)
        v1_bytes = (tmp_path / "v1" / ARRAYS_NAME).stat().st_size
        v2_bytes = (tmp_path / "v2" / ARRAYS_NAME).stat().st_size
        assert v2_bytes < v1_bytes

    def test_corrupt_payload_fails_loudly(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m", schema_version=2)
        payload = tmp_path / "m" / ARRAYS_NAME
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError, match="checksum mismatch") as info:
            load_artifact(tmp_path / "m")
        # the typed error carries path + digests so operators can triage
        assert info.value.path == payload
        assert info.value.expected != info.value.actual
        assert info.value.actual is not None

    def test_missing_payload_reported(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m", schema_version=2)
        (tmp_path / "m" / ARRAYS_NAME).unlink()
        with pytest.raises(ArtifactCorruptError, match="missing payload") as info:
            load_artifact(tmp_path / "m")
        assert info.value.actual is None  # payload gone, nothing to hash

    def test_v1_artifact_loads_unchanged(self, tmp_path):
        model = _random_hmm(3)
        _write_v1_artifact(model, tmp_path / "m")
        assert verify_checksums(tmp_path / "m") is False  # nothing recorded
        loaded = load_artifact(tmp_path / "m")
        _, obs = model.sample(12, seed=3)
        obs = np.asarray(obs)
        assert np.array_equal(model.decode(obs), loaded.decode(obs))
        assert model.log_likelihood(obs) == pytest.approx(
            loaded.log_likelihood(obs), abs=1e-12
        )

    def test_v1_to_v2_round_trip(self, tmp_path):
        """Loading a v1 artifact and re-saving upgrades it to v2 losslessly."""
        model = _random_hmm(5)
        _write_v1_artifact(model, tmp_path / "old")
        upgraded = load_artifact(tmp_path / "old")
        save_artifact(upgraded, tmp_path / "new", schema_version=2)
        assert read_manifest(tmp_path / "new")["schema_version"] == 2
        reloaded = load_artifact(tmp_path / "new")
        _, obs = model.sample(12, seed=5)
        obs = np.asarray(obs)
        assert np.array_equal(model.decode(obs), reloaded.decode(obs))

    def test_registry_serves_mixed_schema_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        v1_model, v2_model = _random_hmm(1), _random_hmm(2)
        _write_v1_artifact(v1_model, tmp_path / "registry" / "m" / "v0001")
        registry.save("m", v2_model)
        assert registry.versions("m") == [1, 2]
        assert registry.describe("m", 1)["schema_version"] == 1
        # registry.save always writes the current schema
        assert registry.describe("m", 2)["schema_version"] == 3
        _, obs = v1_model.sample(8, seed=1)
        obs = np.asarray(obs)
        assert np.array_equal(
            registry.load("m", 1).decode(obs), v1_model.decode(obs)
        )


class TestAtomicWrites:
    def test_partial_payload_write_is_never_visible(self, tmp_path, monkeypatch):
        """Regression: a crash mid-payload-write used to leave a torn file
        under the final name.  Now the write lands in a temp file, so the
        destination name never exists half-written."""
        target = tmp_path / "m"

        def torn_save(fh, *args, **kwargs):
            fh.write(b"\x93NUMPY partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "save", torn_save)
        with pytest.raises(OSError, match="disk full"):
            save_artifact(_random_hmm(0), target)
        assert not (target / "arrays-0000.npy").exists()
        assert not (target / MANIFEST_NAME).exists()
        # no temp litter either
        assert [p.name for p in target.iterdir()] == []

    def test_crashed_overwrite_keeps_previous_artifact(self, tmp_path, monkeypatch):
        """Re-saving over an existing artifact that crashes mid-write must
        leave the previous, complete artifact loadable."""
        target = tmp_path / "m"
        original = _random_hmm(1)
        save_artifact(original, target)

        def torn_save(fh, *args, **kwargs):
            fh.write(b"garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "save", torn_save)
        with pytest.raises(OSError):
            save_artifact(_random_hmm(2), target)
        loaded = load_artifact(target)  # checksum still verifies
        _, obs = original.sample(10, seed=1)
        obs = np.asarray(obs)
        assert np.array_equal(loaded.decode(obs), original.decode(obs))

    def test_torn_registry_save_is_not_listed(self, tmp_path, monkeypatch):
        """A registry version whose save crashed (manifest never landed) is
        invisible: not listed, not loadable as latest."""
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("m", _random_hmm(1))

        def torn_save(fh, *args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "save", torn_save)
        with pytest.raises(OSError):
            registry.save("m", _random_hmm(2))
        assert registry.versions("m") == [1]
        assert registry.latest_version("m") == 1
        registry.load("m")  # the surviving version is intact
        # the crashed save's number is not resurrected with stale content:
        # the next successful save claims a fresh directory
        monkeypatch.undo()
        assert registry.save("m", _random_hmm(3)) == 3


class TestRegistryGC:
    @pytest.fixture
    def registry(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for seed in range(4):
            registry.save("m", _random_hmm(seed))
        return registry

    def test_keeps_newest_n_and_reports_removals(self, registry):
        removed = registry.gc(keep_last_n=2)
        assert removed == [("m", 1), ("m", 2)]
        assert registry.versions("m") == [3, 4]

    def test_latest_is_never_collected(self, registry):
        assert registry.gc(keep_last_n=1) == [("m", 1), ("m", 2), ("m", 3)]
        assert registry.versions("m") == [4]
        assert registry.latest_version("m") == 4
        # idempotent: nothing left to collect
        assert registry.gc(keep_last_n=1) == []

    def test_protected_versions_survive(self, registry):
        removed = registry.gc(keep_last_n=1, protect=[("m", 2)])
        assert removed == [("m", 1), ("m", 3)]
        assert registry.versions("m") == [2, 4]

    def test_router_loaded_version_survives_gc(self, registry):
        _, sequences = _random_hmm(0).sample_dataset(2, 8, seed=0)
        with Router(registry) as router:
            router.tag("m", sequences[0], version=1)  # pin the oldest
            removed = registry.gc(keep_last_n=1, protect=router.loaded_models())
            assert ("m", 1) not in removed
            assert registry.versions("m") == [1, 4]
            # still serving from the resident executor after the sweep
            router.tag("m", sequences[1], version=1)

    def test_gc_with_version_gaps(self, registry):
        registry.gc(keep_last_n=1, protect=[("m", 2)])  # leaves [2, 4]
        registry.save("m", _random_hmm(9))  # [2, 4, 5]
        removed = registry.gc(keep_last_n=2)
        assert removed == [("m", 2)]
        assert registry.versions("m") == [4, 5]

    def test_gc_scopes_to_one_name(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for seed in range(3):
            registry.save("a", _random_hmm(seed))
            registry.save("b", _random_hmm(seed + 10))
        assert registry.gc(keep_last_n=1, name="a") == [("a", 1), ("a", 2)]
        assert registry.versions("b") == [1, 2, 3]

    def test_gc_all_models(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for seed in range(3):
            registry.save("a", _random_hmm(seed))
            registry.save("b", _random_hmm(seed + 10))
        removed = registry.gc(keep_last_n=2)
        assert removed == [("a", 1), ("b", 1)]

    def test_version_numbering_is_append_only_after_gc(self, registry):
        registry.gc(keep_last_n=1)
        assert registry.save("m", _random_hmm(7)) == 5

    def test_keep_last_n_validated(self, registry):
        with pytest.raises(ValidationError, match="keep_last_n"):
            registry.gc(keep_last_n=0)
        assert registry.versions("m") == [1, 2, 3, 4]
