"""Unit tests for Baum-Welch EM training."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.hmm.baum_welch import BaumWelchTrainer
from repro.hmm.emissions import CategoricalEmission, GaussianEmission
from repro.hmm.model import HMM
from repro.hmm.transition_updaters import MaximumLikelihoodTransitionUpdater


def make_ground_truth_categorical():
    startprob = np.array([0.7, 0.3])
    transmat = np.array([[0.85, 0.15], [0.25, 0.75]])
    emissions = CategoricalEmission(np.array([[0.9, 0.05, 0.05], [0.05, 0.05, 0.9]]))
    return HMM(startprob, transmat, emissions)


class TestBaumWelchTrainer:
    def test_log_likelihood_is_monotone_non_decreasing(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(40, 15, seed=0)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=1), seed=1)
        trainer = BaumWelchTrainer(max_iter=20, tol=0.0)
        result = trainer.fit(model, observations)
        diffs = np.diff(result.history)
        assert np.all(diffs >= -1e-6)

    def test_improves_over_random_initialization(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(40, 15, seed=2)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=3), seed=3)
        before = model.score(observations)
        trainer = BaumWelchTrainer(max_iter=25)
        result = trainer.fit(model, observations)
        assert result.log_likelihood > before

    def test_recovers_separable_gaussian_means(self):
        emissions = GaussianEmission(np.array([0.0, 50.0]), np.array([1.0, 1.0]))
        truth = HMM(np.array([0.5, 0.5]), np.array([[0.8, 0.2], [0.3, 0.7]]), emissions)
        _, observations = truth.sample_dataset(60, 10, seed=4)
        start = GaussianEmission.random_init(2, observations, seed=5)
        model = HMM.random_init(start, seed=5)
        BaumWelchTrainer(max_iter=30).fit(model, observations)
        learned = np.sort(model.emissions.means)
        assert abs(learned[0] - 0.0) < 2.0
        assert abs(learned[1] - 50.0) < 2.0

    def test_frozen_blocks_are_not_updated(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(10, 8, seed=6)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=7), seed=7)
        original_transmat = model.transmat.copy()
        original_start = model.startprob.copy()
        trainer = BaumWelchTrainer(
            max_iter=3, update_transitions=False, update_startprob=False
        )
        trainer.fit(model, observations)
        assert np.allclose(model.transmat, original_transmat)
        assert np.allclose(model.startprob, original_start)

    def test_convergence_flag_set_for_tight_model(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(20, 10, seed=8)
        model = truth.copy()  # start at the ground truth: EM should stop fast
        trainer = BaumWelchTrainer(max_iter=50, tol=1e-3)
        result = trainer.fit(model, observations)
        assert result.converged
        assert result.n_iter < 50

    def test_warns_when_not_converged(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(10, 10, seed=9)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=10), seed=10)
        trainer = BaumWelchTrainer(max_iter=2, tol=0.0, warn_on_no_convergence=True)
        with pytest.warns(ConvergenceWarning):
            trainer.fit(model, observations)

    def test_empty_sequences_raise(self):
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=0), seed=0)
        with pytest.raises(ValidationError):
            BaumWelchTrainer().fit(model, [])

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValidationError):
            BaumWelchTrainer(max_iter=0)
        with pytest.raises(ValidationError):
            BaumWelchTrainer(tol=-1.0)

    def test_e_step_statistics_shapes(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(5, 6, seed=11)
        trainer = BaumWelchTrainer()
        stats = trainer.e_step(truth, observations)
        assert stats.start_counts.shape == (2,)
        assert stats.transition_counts.shape == (2, 2)
        assert len(stats.posteriors) == 5
        assert np.isclose(stats.start_counts.sum(), 5.0)
        # Each sequence contributes T-1 expected transitions.
        assert np.isclose(stats.transition_counts.sum(), 5 * 5.0)


class TestMaximumLikelihoodTransitionUpdater:
    def test_normalizes_counts(self):
        updater = MaximumLikelihoodTransitionUpdater()
        counts = np.array([[6.0, 2.0], [1.0, 3.0]])
        out = updater.update(counts, np.full((2, 2), 0.5))
        assert np.allclose(out, [[0.75, 0.25], [0.25, 0.75]])

    def test_pseudocount_smooths_zero_rows(self):
        updater = MaximumLikelihoodTransitionUpdater(pseudocount=1.0)
        counts = np.array([[0.0, 0.0], [4.0, 0.0]])
        out = updater.update(counts, np.full((2, 2), 0.5))
        assert np.allclose(out[0], [0.5, 0.5])
        assert np.allclose(out[1], [5.0 / 6.0, 1.0 / 6.0])

    def test_negative_pseudocount_rejected(self):
        with pytest.raises(ValueError):
            MaximumLikelihoodTransitionUpdater(pseudocount=-0.5)

    def test_objective_is_expected_log_likelihood(self):
        updater = MaximumLikelihoodTransitionUpdater()
        counts = np.array([[2.0, 1.0], [1.0, 2.0]])
        A = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert np.isclose(updater.objective(counts, A), 6 * np.log(0.5))
