"""Unit tests for Baum-Welch EM training."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.hmm.baum_welch import BaumWelchTrainer
from repro.hmm.emissions import CategoricalEmission, GaussianEmission
from repro.hmm.model import HMM
from repro.hmm.transition_updaters import MaximumLikelihoodTransitionUpdater


def make_ground_truth_categorical():
    startprob = np.array([0.7, 0.3])
    transmat = np.array([[0.85, 0.15], [0.25, 0.75]])
    emissions = CategoricalEmission(np.array([[0.9, 0.05, 0.05], [0.05, 0.05, 0.9]]))
    return HMM(startprob, transmat, emissions)


class TestBaumWelchTrainer:
    def test_log_likelihood_is_monotone_non_decreasing(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(40, 15, seed=0)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=1), seed=1)
        trainer = BaumWelchTrainer(max_iter=20, tol=0.0)
        result = trainer.fit(model, observations)
        diffs = np.diff(result.history)
        assert np.all(diffs >= -1e-6)

    def test_improves_over_random_initialization(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(40, 15, seed=2)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=3), seed=3)
        before = model.score(observations)
        trainer = BaumWelchTrainer(max_iter=25)
        result = trainer.fit(model, observations)
        assert result.log_likelihood > before

    def test_recovers_separable_gaussian_means(self):
        emissions = GaussianEmission(np.array([0.0, 50.0]), np.array([1.0, 1.0]))
        truth = HMM(np.array([0.5, 0.5]), np.array([[0.8, 0.2], [0.3, 0.7]]), emissions)
        _, observations = truth.sample_dataset(60, 10, seed=4)
        start = GaussianEmission.random_init(2, observations, seed=5)
        model = HMM.random_init(start, seed=5)
        BaumWelchTrainer(max_iter=30).fit(model, observations)
        learned = np.sort(model.emissions.means)
        assert abs(learned[0] - 0.0) < 2.0
        assert abs(learned[1] - 50.0) < 2.0

    def test_frozen_blocks_are_not_updated(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(10, 8, seed=6)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=7), seed=7)
        original_transmat = model.transmat.copy()
        original_start = model.startprob.copy()
        trainer = BaumWelchTrainer(
            max_iter=3, update_transitions=False, update_startprob=False
        )
        trainer.fit(model, observations)
        assert np.allclose(model.transmat, original_transmat)
        assert np.allclose(model.startprob, original_start)

    def test_convergence_flag_set_for_tight_model(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(20, 10, seed=8)
        model = truth.copy()  # start at the ground truth: EM should stop fast
        trainer = BaumWelchTrainer(max_iter=50, tol=1e-3)
        result = trainer.fit(model, observations)
        assert result.converged
        assert result.n_iter < 50

    def test_warns_when_not_converged(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(10, 10, seed=9)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=10), seed=10)
        trainer = BaumWelchTrainer(max_iter=2, tol=0.0, warn_on_no_convergence=True)
        with pytest.warns(ConvergenceWarning):
            trainer.fit(model, observations)

    def test_empty_sequences_raise(self):
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=0), seed=0)
        with pytest.raises(ValidationError):
            BaumWelchTrainer().fit(model, [])

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValidationError):
            BaumWelchTrainer(max_iter=0)
        with pytest.raises(ValidationError):
            BaumWelchTrainer(tol=-1.0)

    def test_e_step_statistics_shapes(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(5, 6, seed=11)
        trainer = BaumWelchTrainer()
        stats = trainer.e_step(truth, observations)
        assert stats.start_counts.shape == (2,)
        assert stats.transition_counts.shape == (2, 2)
        assert len(stats.posteriors) == 5
        assert np.isclose(stats.start_counts.sum(), 5.0)
        # Each sequence contributes T-1 expected transitions.
        assert np.isclose(stats.transition_counts.sum(), 5 * 5.0)


class _CountingEmission(CategoricalEmission):
    """Counts scoring calls; family stays abstract to keep the registry clean."""

    family = "abstract"

    def __init__(self, emission_probs):
        super().__init__(emission_probs)
        self.single_calls = 0
        self.batch_calls = 0
        self.concat_calls = 0

    def log_likelihoods(self, sequence):
        self.single_calls += 1
        return super().log_likelihoods(sequence)

    def log_likelihoods_batch(self, sequences):
        self.batch_calls += 1
        return super().log_likelihoods_batch(sequences)

    def log_likelihoods_concat(self, concat):
        self.concat_calls += 1
        return super().log_likelihoods_concat(concat)


class TestEStepUsesBatchScoring:
    def test_e_step_scores_emissions_once_not_per_sequence(self):
        # Regression: e_step used to loop `log_likelihoods(seq)` over the
        # corpus, bypassing the vectorized batch API that HMM.score/predict
        # already use.  One e_step over N sequences must make exactly one
        # batch call, which for categorical emissions scores the whole
        # concatenated corpus with a single log_likelihoods call.
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(12, 9, seed=13)
        emissions = _CountingEmission(truth.emissions.emission_probs)
        model = HMM(truth.startprob, truth.transmat, emissions)
        stats = BaumWelchTrainer().e_step(model, observations)
        assert emissions.batch_calls == 1
        assert emissions.single_calls == 1  # the one concatenated-corpus call
        assert len(stats.posteriors) == 12

    def test_fit_scores_emissions_once_per_iteration(self):
        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(10, 6, seed=14)
        emissions = _CountingEmission(truth.emissions.emission_probs)
        model = HMM(truth.startprob, truth.transmat, emissions)
        n_iter = BaumWelchTrainer(max_iter=4, tol=0.0).fit(model, observations).n_iter
        # The compiled-corpus fit scores the concatenated corpus exactly
        # once per EM iteration and never per sequence.
        assert emissions.concat_calls == n_iter
        assert emissions.single_calls == 0
        assert emissions.batch_calls == 0


class TestSubclassedStepsStillDriveFit:
    def test_overridden_m_step_is_called_by_fit(self):
        # The compiled-corpus fast path must not bypass subclass overrides
        # of the public e_step/m_step hooks.
        calls = {"e": 0, "m": 0}

        class LoggingTrainer(BaumWelchTrainer):
            def e_step(self, model, sequences):
                calls["e"] += 1
                return super().e_step(model, sequences)

            def m_step(self, model, sequences, stats):
                calls["m"] += 1
                super().m_step(model, sequences, stats)

        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(6, 7, seed=15)
        model = HMM.random_init(CategoricalEmission.random_init(2, 3, seed=16), seed=16)
        result = LoggingTrainer(max_iter=3, tol=0.0).fit(model, observations)
        assert calls["e"] == result.n_iter == 3
        assert calls["m"] == 3

    def test_overridden_steps_match_stock_training(self):
        class PlainSubclass(BaumWelchTrainer):
            def m_step(self, model, sequences, stats):
                super().m_step(model, sequences, stats)

        truth = make_ground_truth_categorical()
        _, observations = truth.sample_dataset(8, 6, seed=17)
        a = HMM(truth.startprob.copy(), truth.transmat.copy(), truth.emissions.copy())
        b = HMM(truth.startprob.copy(), truth.transmat.copy(), truth.emissions.copy())
        ra = BaumWelchTrainer(max_iter=3, tol=0.0).fit(a, observations)
        rb = PlainSubclass(max_iter=3, tol=0.0).fit(b, observations)
        np.testing.assert_allclose(ra.history, rb.history, rtol=1e-9)
        np.testing.assert_allclose(a.transmat, b.transmat, atol=1e-8)


class TestMaximumLikelihoodTransitionUpdater:
    def test_normalizes_counts(self):
        updater = MaximumLikelihoodTransitionUpdater()
        counts = np.array([[6.0, 2.0], [1.0, 3.0]])
        out = updater.update(counts, np.full((2, 2), 0.5))
        assert np.allclose(out, [[0.75, 0.25], [0.25, 0.75]])

    def test_pseudocount_smooths_zero_rows(self):
        updater = MaximumLikelihoodTransitionUpdater(pseudocount=1.0)
        counts = np.array([[0.0, 0.0], [4.0, 0.0]])
        out = updater.update(counts, np.full((2, 2), 0.5))
        assert np.allclose(out[0], [0.5, 0.5])
        assert np.allclose(out[1], [5.0 / 6.0, 1.0 / 6.0])

    def test_negative_pseudocount_rejected(self):
        with pytest.raises(ValueError):
            MaximumLikelihoodTransitionUpdater(pseudocount=-0.5)

    def test_objective_is_expected_log_likelihood(self):
        updater = MaximumLikelihoodTransitionUpdater()
        counts = np.array([[2.0, 1.0], [1.0, 2.0]])
        A = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert np.isclose(updater.objective(counts, A), 6 * np.log(0.5))
