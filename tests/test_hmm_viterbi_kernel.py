"""Hard-path tests for the fused batched Viterbi kernel.

The fused kernel runs the Viterbi recursion in the log domain with the same
elementary operations (broadcast add against ``log A``, first-index argmax
over source states) as :func:`repro.hmm.viterbi.viterbi_decode_from_log`,
so decoded paths must be *bit-identical* to the log reference — including
on deliberately tie-heavy models, where a probability-domain kernel could
legitimately break ties differently.  The ``_TINY`` underflow fallback of
the forward-backward path must likewise reproduce the reference exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.hmm import (
    CategoricalEmission,
    InferenceEngine,
    viterbi_backpointer_dtype,
)
from repro.hmm.viterbi import viterbi_decode


def _engines(bucket_size=3):
    return (
        InferenceEngine(backend="scaled", bucket_size=bucket_size),
        InferenceEngine(backend="log"),
    )


class TestViterbiTieBreaking:
    def test_uniform_model_decodes_all_zeros_in_both_backends(self):
        # Fully uniform model: every path ties, so the decoded path is
        # determined purely by tie-breaking (first index wins everywhere).
        k = 4
        startprob = np.full(k, 1.0 / k)
        transmat = np.full((k, k), 1.0 / k)
        emissions = CategoricalEmission(np.full((k, 6), 1.0 / 6))
        sequences = [np.array([0, 3, 1, 5, 2]), np.array([1]), np.array([2, 2, 4] * 7)]
        tables = emissions.log_likelihoods_batch(sequences)
        scaled, reference = _engines()
        got = scaled.viterbi_batch(startprob, transmat, tables)
        want = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj) in zip(got, want):
            np.testing.assert_array_equal(g_path, np.zeros_like(g_path))
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj

    def test_duplicate_states_tie_break_identically(self):
        # Two pairs of interchangeable states (identical emission rows,
        # identical transition rows): the argmax sees exact ties between
        # them at every timestep in both backends.
        rng = np.random.default_rng(0)
        base = rng.dirichlet(np.ones(5), size=2)
        emissions = CategoricalEmission(np.vstack([base[0], base[0], base[1], base[1]]))
        startprob = np.full(4, 0.25)
        transmat = np.tile(np.array([[0.3, 0.3, 0.2, 0.2]]), (4, 1))
        sequences = [rng.integers(0, 5, size=n) for n in (1, 4, 9, 30, 2)]
        tables = emissions.log_likelihoods_batch(sequences)
        scaled, reference = _engines()
        got = scaled.viterbi_batch(startprob, transmat, tables)
        want = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj) in zip(got, want):
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj
            # the tie must resolve to the lower-indexed state of each pair
            assert set(np.unique(g_path)).issubset({0, 2})

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_models_decode_bit_identically(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 6))
        emissions = CategoricalEmission(rng.dirichlet(np.ones(7), size=k))
        startprob = rng.dirichlet(np.ones(k))
        transmat = rng.dirichlet(np.ones(k), size=k)
        sequences = [rng.integers(0, 7, size=n) for n in (1, 2, 5, 17, 40)]
        tables = emissions.log_likelihoods_batch(sequences)
        scaled, reference = _engines()
        got = scaled.viterbi_batch(startprob, transmat, tables)
        want = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj), table in zip(got, want, tables):
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj
        # and both match the standalone reference decoder
        for (g_path, g_lj), table in zip(got, tables):
            ref_path, ref_lj = viterbi_decode(startprob, transmat, table)
            np.testing.assert_array_equal(g_path, ref_path)
            assert g_lj == ref_lj

    def test_unsorted_bucket_lengths_are_handled(self):
        # The kernel's active-suffix optimization assumes length-sorted
        # buckets; calling it directly with unsorted lengths must re-sort
        # defensively and return results in the caller's order.
        rng = np.random.default_rng(3)
        k = 3
        emissions = CategoricalEmission(rng.dirichlet(np.ones(4), size=k))
        startprob = rng.dirichlet(np.ones(k))
        transmat = rng.dirichlet(np.ones(k), size=k)
        sequences = [rng.integers(0, 4, size=n) for n in (9, 2, 6)]
        tables = emissions.log_likelihoods_batch(sequences)
        scaled, reference = _engines()
        backend = scaled.backend
        from repro.utils.maths import safe_log

        log_pi, log_AT = backend._viterbi_log_params(startprob, transmat, None, None)
        padded = np.zeros((3, 9, k))
        for row, table in enumerate(tables):
            padded[row, : table.shape[0]] = table
        got = backend._viterbi_bucket(
            log_pi, log_AT, padded, np.array([9, 2, 6])
        )
        want = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj) in zip(got, want):
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj


class TestUnderflowFallback:
    def test_long_low_probability_sequence_matches_reference_exactly(self):
        # A long low-probability sequence whose forward mass vanishes at one
        # timestep (>745-nat spread underflows the probability domain even
        # though the sequence is possible) must be recomputed with the
        # log-domain reference and match it bit-for-bit, while an ordinary
        # sequence in the same bucket stays on the fast path.
        startprob = np.array([1.0, 0.0])
        transmat = np.eye(2)
        hard = np.full((150, 2), [-5.0, -750.0])
        hard[75] = [-800.0, 0.0]
        fine = np.full((149, 2), [-1.0, -2.0])
        tables = [hard, fine]
        scaled, reference = _engines(bucket_size=8)

        got = scaled.posteriors_batch(startprob, transmat, tables)
        want = reference.posteriors_batch(startprob, transmat, tables)
        assert np.isfinite(want[0].log_likelihood)
        # the underflowed sequence is recomputed by the reference recursion
        np.testing.assert_array_equal(got[0].gamma, want[0].gamma)
        np.testing.assert_array_equal(got[0].xi_sum, want[0].xi_sum)
        assert got[0].log_likelihood == want[0].log_likelihood
        # the healthy bucket-mate stays on the scaled fast path, within atol
        np.testing.assert_allclose(got[1].gamma, want[1].gamma, atol=1e-8)
        assert abs(got[1].log_likelihood - want[1].log_likelihood) < 1e-8

        got_ll = scaled.log_likelihood_batch(startprob, transmat, tables)
        want_ll = reference.log_likelihood_batch(startprob, transmat, tables)
        assert got_ll[0] == want_ll[0]
        assert abs(got_ll[1] - want_ll[1]) < 1e-8

        # Viterbi runs in the log domain: bit-identical with no fallback.
        got_v = scaled.viterbi_batch(startprob, transmat, tables)
        want_v = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj) in zip(got_v, want_v):
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj

    def test_impossible_timestep_matches_reference_exactly(self):
        # A timestep where every state is impossible (-inf row): -inf
        # likelihood and Viterbi score, exactly as the reference reports.
        startprob = np.array([0.6, 0.4])
        transmat = np.array([[0.7, 0.3], [0.2, 0.8]])
        log_obs = np.array([[-0.5, -1.0], [-np.inf, -np.inf], [-0.3, -0.9]])
        scaled, reference = _engines()
        got = scaled.posteriors(startprob, transmat, log_obs)
        want = reference.posteriors(startprob, transmat, log_obs)
        assert got.log_likelihood == want.log_likelihood == -np.inf
        np.testing.assert_array_equal(got.gamma, want.gamma)
        got_path, got_lj = scaled.viterbi(startprob, transmat, log_obs)
        want_path, want_lj = reference.viterbi(startprob, transmat, log_obs)
        np.testing.assert_array_equal(got_path, want_path)
        assert got_lj == want_lj == -np.inf


class TestBackpointerDtype:
    @pytest.mark.parametrize(
        "n_states, expected",
        [
            (1, np.uint8),
            (2, np.uint8),
            (256, np.uint8),
            (257, np.uint16),
            (65_536, np.uint16),
            (65_537, np.int64),
        ],
    )
    def test_smallest_dtype_that_fits(self, n_states, expected):
        assert viterbi_backpointer_dtype(n_states) == np.dtype(expected)

    def test_rejects_non_positive_state_counts(self):
        with pytest.raises(ValidationError):
            viterbi_backpointer_dtype(0)

    def test_paths_survive_small_dtype_round_trip(self):
        # 300 states forces uint16 backpointers; decoding must still agree
        # with the log reference bit-for-bit.
        rng = np.random.default_rng(11)
        k = 300
        startprob = rng.dirichlet(np.ones(k))
        transmat = rng.dirichlet(np.ones(k), size=k)
        tables = [rng.normal(size=(n, k)) for n in (1, 4, 7)]
        scaled, reference = _engines()
        got = scaled.viterbi_batch(startprob, transmat, tables)
        want = reference.viterbi_batch(startprob, transmat, tables)
        for (g_path, g_lj), (w_path, w_lj) in zip(got, want):
            assert g_path.max() < k
            np.testing.assert_array_equal(g_path, w_path)
            assert g_lj == w_lj
