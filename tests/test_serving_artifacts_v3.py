"""Artifact schema v3: raw ``.npy`` payloads, mmap sharing, mixed-schema stores."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.exceptions import ArtifactCorruptError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import ModelRegistry, load_artifact, save_artifact
from repro.serving.persistence import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    _flatten,
    read_manifest,
    verify_checksums,
)


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _write_v1_artifact(model, path, model_type="hmm"):
    """Replicate the pre-v2 artifact layout: uncompressed, no checksums."""
    path.mkdir(parents=True, exist_ok=True)
    arrays = {}
    state = _flatten(model.to_state_dict(), "", arrays)
    with (path / ARRAYS_NAME).open("wb") as fh:
        np.savez(fh, **arrays)
    manifest = {
        "schema_version": 1,
        "model_type": model_type,
        "metadata": {},
        "state": state,
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def _memmap_base(array):
    """Walk ``.base`` to the underlying ``np.memmap`` (or None)."""
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return node
        node = getattr(node, "base", None)
    return None


class TestSchemaV3Layout:
    def test_default_save_writes_v3(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m")
        manifest = read_manifest(tmp_path / "m")
        assert manifest["schema_version"] == 3
        # one raw .npy file per parameter array, each with its own checksum
        array_files = manifest["arrays"]
        assert sorted(array_files.values()) == sorted(manifest["checksums"])
        for key, filename in array_files.items():
            payload = tmp_path / "m" / filename
            assert payload.is_file()
            loaded = np.load(payload, allow_pickle=False)
            assert loaded.dtype.byteorder in ("<", "=", "|")
        assert "arrays-0000.npy" in manifest["checksums"]
        assert not (tmp_path / "m" / ARRAYS_NAME).exists()
        assert verify_checksums(tmp_path / "m") is True

    def test_v2_to_v3_round_trip(self, tmp_path):
        """A v2 artifact re-saved under the current schema loads identically."""
        model = _random_hmm(7)
        save_artifact(model, tmp_path / "old", schema_version=2)
        upgraded = load_artifact(tmp_path / "old")
        save_artifact(upgraded, tmp_path / "new")
        assert read_manifest(tmp_path / "new")["schema_version"] == 3
        reloaded = load_artifact(tmp_path / "new")
        _, obs = model.sample(16, seed=7)
        obs = np.asarray(obs)
        assert np.array_equal(model.decode(obs), reloaded.decode(obs))
        assert model.log_likelihood(obs) == pytest.approx(
            reloaded.log_likelihood(obs), abs=1e-12
        )

    def test_corrupt_npy_payload_fails_loudly(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m")
        payload = tmp_path / "m" / "arrays-0000.npy"
        blob = bytearray(payload.read_bytes())
        blob[-1] ^= 0xFF
        payload.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError, match="checksum mismatch") as info:
            load_artifact(tmp_path / "m")
        assert info.value.path == payload
        assert info.value.expected != info.value.actual

    def test_missing_npy_payload_reported(self, tmp_path):
        save_artifact(_random_hmm(0), tmp_path / "m")
        (tmp_path / "m" / "arrays-0001.npy").unlink()
        with pytest.raises(ArtifactCorruptError, match="missing payload") as info:
            load_artifact(tmp_path / "m")
        assert info.value.actual is None


class TestMmapLoading:
    def test_mmap_arrays_are_read_only_and_file_backed(self, tmp_path):
        model = _random_hmm(3)
        save_artifact(model, tmp_path / "m")
        mapped = load_artifact(tmp_path / "m", mmap=True)
        table = mapped.emissions.emission_probs
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0.5
        backing = _memmap_base(table)
        assert backing is not None
        assert Path(backing.filename).parent == tmp_path / "m"
        # a mapped model serves the same answers as a private-copy load
        _, obs = model.sample(16, seed=3)
        obs = np.asarray(obs)
        assert np.array_equal(mapped.decode(obs), model.decode(obs))
        assert mapped.log_likelihood(obs) == pytest.approx(
            model.log_likelihood(obs), abs=1e-12
        )

    def test_mmap_request_on_v2_falls_back_to_private_copy(self, tmp_path):
        model = _random_hmm(4)
        save_artifact(model, tmp_path / "m", schema_version=2)
        loaded = load_artifact(tmp_path / "m", mmap=True)  # silent fallback
        assert _memmap_base(loaded.emissions.emission_probs) is None
        _, obs = model.sample(12, seed=4)
        assert np.array_equal(loaded.decode(np.asarray(obs)), model.decode(np.asarray(obs)))

    def test_registry_load_forwards_mmap(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("m", _random_hmm(5))
        mapped = registry.load("m", mmap=True)
        assert not mapped.emissions.emission_probs.flags.writeable

    def test_two_processes_map_the_same_payload_file(self, tmp_path):
        """Two independent processes loading with ``mmap=True`` end up backed
        by the same on-disk ``.npy`` file — i.e. they share page-cache pages
        instead of holding private heap copies."""
        save_artifact(_random_hmm(6), tmp_path / "m")
        child = (
            "import hashlib, json, sys\n"
            "import numpy as np\n"
            "from repro.serving import load_artifact\n"
            "model = load_artifact(sys.argv[1], mmap=True)\n"
            "table = model.emissions.emission_probs\n"
            "node = table\n"
            "while node is not None and not isinstance(node, np.memmap):\n"
            "    node = getattr(node, 'base', None)\n"
            "assert node is not None, 'emission table is not memory-mapped'\n"
            "assert not table.flags.writeable\n"
            "print(json.dumps({\n"
            "    'backing': str(node.filename),\n"
            "    'digest': hashlib.sha256(np.ascontiguousarray(table).tobytes()).hexdigest(),\n"
            "}))\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", child, str(tmp_path / "m")],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
            )
            for _ in range(2)
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            reports.append(json.loads(out))
        assert reports[0]["backing"] == reports[1]["backing"]
        assert Path(reports[0]["backing"]).parent == tmp_path / "m"
        assert reports[0]["digest"] == reports[1]["digest"]


class TestMixedSchemaRegistry:
    def _mixed_registry(self, tmp_path):
        """A registry holding one artifact of each schema generation."""
        registry = ModelRegistry(tmp_path / "registry")
        models = [_random_hmm(seed) for seed in (1, 2, 3)]
        _write_v1_artifact(models[0], tmp_path / "registry" / "m" / "v0001")
        v2_dir = tmp_path / "registry" / "m" / "v0002"
        v2_dir.mkdir(parents=True)
        save_artifact(models[1], v2_dir, schema_version=2)
        registry.save("m", models[2])  # current schema -> v3
        return registry, models

    def test_all_generations_load(self, tmp_path):
        registry, models = self._mixed_registry(tmp_path)
        assert registry.versions("m") == [1, 2, 3]
        for version, model in zip((1, 2, 3), models):
            _, obs = model.sample(10, seed=version)
            obs = np.asarray(obs)
            assert np.array_equal(
                registry.load("m", version).decode(obs), model.decode(obs)
            )
        schemas = [registry.describe("m", v)["schema_version"] for v in (1, 2, 3)]
        assert schemas == [1, 2, 3]

    def test_gc_sweeps_across_schema_generations(self, tmp_path):
        registry, models = self._mixed_registry(tmp_path)
        removed = registry.gc(keep_last_n=1)
        assert removed == [("m", 1), ("m", 2)]
        assert registry.versions("m") == [3]
        survivor = registry.load("m", mmap=True)
        _, obs = models[2].sample(10, seed=3)
        obs = np.asarray(obs)
        assert np.array_equal(survivor.decode(obs), models[2].decode(obs))

    def test_gc_protects_old_schema_versions(self, tmp_path):
        registry, _ = self._mixed_registry(tmp_path)
        removed = registry.gc(keep_last_n=1, protect=[("m", 1)])
        assert removed == [("m", 2)]
        assert registry.versions("m") == [1, 3]
        registry.load("m", 1)  # the protected v1 artifact still loads
