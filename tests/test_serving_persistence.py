"""Persistence round-trips: artifacts, state dicts and the model registry."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BernoulliNaiveBayes,
    OptimizedHMMClassifier,
    SupervisedHMMClassifier,
)
from repro.core import DHMMConfig, DiversifiedHMM, SupervisedDiversifiedHMM
from repro.exceptions import ValidationError
from repro.hmm import (
    HMM,
    BernoulliEmission,
    CategoricalEmission,
    GaussianEmission,
)
from repro.serving import ModelRegistry, load_artifact, save_artifact
from repro.serving.persistence import MANIFEST_NAME, resolve_hmm


def _random_hmm(seed, family, n_states=4):
    rng = np.random.default_rng(seed)
    if family == "categorical":
        emissions = CategoricalEmission(rng.dirichlet(np.ones(7), size=n_states))
    elif family == "gaussian":
        emissions = GaussianEmission(
            rng.normal(size=n_states), rng.uniform(0.5, 2.0, size=n_states)
        )
    else:
        emissions = BernoulliEmission(rng.uniform(0.1, 0.9, size=(n_states, 6)))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


class TestHmmRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        family=st.sampled_from(["categorical", "gaussian", "bernoulli"]),
        length=st.integers(2, 12),
    )
    def test_posteriors_and_viterbi_identical_after_round_trip(
        self, tmp_path_factory, seed, family, length
    ):
        """Property: save -> load preserves inference exactly, all families."""
        tmp_path = tmp_path_factory.mktemp("artifact")
        model = _random_hmm(seed, family)
        _, obs = model.sample(length, seed=seed)
        obs = np.asarray(obs)

        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")

        # Arrays survive the npz round-trip bit-exactly; constructors may
        # renormalize rows (a no-op up to one ulp), so inference quantities
        # are compared at far-below-model-noise tolerance and the decoded
        # path exactly.
        assert np.array_equal(model.decode(obs), loaded.decode(obs))
        assert model.log_likelihood(obs) == pytest.approx(
            loaded.log_likelihood(obs), abs=1e-12
        )
        want, got = model.posteriors(obs), loaded.posteriors(obs)
        np.testing.assert_allclose(want.gamma, got.gamma, atol=1e-12, rtol=0)
        np.testing.assert_allclose(want.xi_sum, got.xi_sum, atol=1e-12, rtol=0)

    def test_manifest_is_json_with_schema_and_type(self, tmp_path):
        save_artifact(_random_hmm(0, "categorical"), tmp_path / "m")
        manifest = json.loads((tmp_path / "m" / MANIFEST_NAME).read_text())
        assert manifest["schema_version"] == 3
        assert manifest["model_type"] == "hmm"

    def test_metadata_round_trips(self, tmp_path):
        from repro.serving import read_manifest

        save_artifact(
            _random_hmm(0, "gaussian"), tmp_path / "m", metadata={"dataset": "toy"}
        )
        assert read_manifest(tmp_path / "m")["metadata"] == {"dataset": "toy"}


class TestEstimatorRoundTrips:
    def test_diversified_hmm_round_trip(self, tmp_path, toy_data):
        model = DiversifiedHMM(
            GaussianEmission.random_init(5, toy_data.observations, seed=1),
            config=DHMMConfig(alpha=1.0, max_em_iter=3),
            seed=1,
        )
        model.fit(toy_data.observations)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")

        assert isinstance(loaded, DiversifiedHMM)
        assert loaded.config == model.config
        assert loaded.seed == 1  # integer seeds round-trip for refit reproducibility
        assert loaded.score(toy_data.observations) == model.score(toy_data.observations)
        for a, b in zip(
            model.predict(toy_data.observations), loaded.predict(toy_data.observations)
        ):
            assert np.array_equal(a, b)

    def test_supervised_dhmm_round_trip(self, tmp_path, tiny_ocr_dataset):
        data = tiny_ocr_dataset
        model = SupervisedDiversifiedHMM(
            n_states=26, n_features=128, config=DHMMConfig(alpha=10.0, max_inner_iter=5)
        )
        model.fit(data.images, data.labels)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")

        assert isinstance(loaded, SupervisedDiversifiedHMM)
        np.testing.assert_array_equal(loaded.base_transmat_, model.base_transmat_)
        np.testing.assert_array_equal(loaded.transmat_, model.transmat_)
        for a, b in zip(model.predict(data.images), loaded.predict(data.images)):
            assert np.array_equal(a, b)

    def test_supervised_hmm_classifier_round_trip(self, tmp_path, tiny_ocr_dataset):
        data = tiny_ocr_dataset
        model = SupervisedHMMClassifier(26, 128).fit(data.images, data.labels)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")
        assert isinstance(loaded, SupervisedHMMClassifier)
        for a, b in zip(model.predict(data.images), loaded.predict(data.images)):
            assert np.array_equal(a, b)

    def test_optimized_hmm_classifier_round_trip(self, tmp_path, tiny_ocr_dataset):
        data = tiny_ocr_dataset
        model = OptimizedHMMClassifier(26, 128).fit(data.images, data.labels)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")
        assert isinstance(loaded, OptimizedHMMClassifier)
        np.testing.assert_array_equal(loaded.pixel_weights_, model.pixel_weights_)
        for a, b in zip(model.predict(data.images), loaded.predict(data.images)):
            assert np.array_equal(a, b)

    def test_naive_bayes_round_trip(self, tmp_path, tiny_ocr_dataset):
        data = tiny_ocr_dataset
        model = BernoulliNaiveBayes(26, 128).fit(data.images, data.labels)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")
        for a, b in zip(model.predict(data.images), loaded.predict(data.images)):
            assert np.array_equal(a, b)

    def test_unfitted_estimator_round_trips(self, tmp_path):
        model = SupervisedHMMClassifier(5, 16)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")
        assert loaded.model_ is None
        assert loaded.n_states == 5

    def test_unfitted_supervised_dhmm_with_explicit_emissions_round_trips(
        self, tmp_path
    ):
        template = CategoricalEmission.random_init(3, 5, seed=0)
        model = SupervisedDiversifiedHMM(n_states=3, emissions=template)
        save_artifact(model, tmp_path / "m")
        loaded = load_artifact(tmp_path / "m")
        assert loaded.model_ is None
        assert isinstance(loaded.emissions, CategoricalEmission)
        np.testing.assert_array_equal(
            loaded.emissions.emission_probs, template.emission_probs
        )


class TestArtifactValidation:
    def test_rejects_unknown_model_type(self, tmp_path):
        save_artifact(_random_hmm(0, "categorical"), tmp_path / "m")
        manifest_path = tmp_path / "m" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["model_type"] = "mystery"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="model_type"):
            load_artifact(tmp_path / "m")

    def test_rejects_newer_schema_version(self, tmp_path):
        save_artifact(_random_hmm(0, "categorical"), tmp_path / "m")
        manifest_path = tmp_path / "m" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="schema version"):
            load_artifact(tmp_path / "m")

    def test_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(ValidationError, match="manifest"):
            load_artifact(tmp_path / "nothing")

    def test_rejects_unpersistable_object(self, tmp_path):
        with pytest.raises(ValidationError, match="not a persistable"):
            save_artifact(object(), tmp_path / "m")

    def test_resolve_hmm(self):
        model = _random_hmm(3, "gaussian")
        assert resolve_hmm(model) is model
        wrapper = SupervisedHMMClassifier(4, 8)
        with pytest.raises(ValidationError, match="fitted"):
            resolve_hmm(wrapper)


class TestModelRegistry:
    def test_versions_increment_and_latest_wins(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        first, second = _random_hmm(1, "categorical"), _random_hmm(2, "categorical")
        assert registry.save("tagger", first) == 1
        assert registry.save("tagger", second) == 2
        assert registry.versions("tagger") == [1, 2]
        np.testing.assert_array_equal(registry.load("tagger").transmat, second.transmat)
        np.testing.assert_array_equal(
            registry.load("tagger", version=1).transmat, first.transmat
        )

    def test_list_and_describe(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("a-model", _random_hmm(0, "gaussian"), metadata={"k": 1})
        registry.save("b-model", _random_hmm(1, "bernoulli"))
        assert registry.list_models() == ["a-model", "b-model"]
        description = registry.describe("a-model")
        assert description["model_type"] == "hmm"
        assert description["metadata"] == {"k": 1}
        assert description["version"] == 1

    def test_describe_resolves_latest_exactly_once(self, tmp_path, monkeypatch):
        """Regression: ``describe`` used to resolve "latest" twice (once via
        ``artifact_path``, once for the reported version number), so a save
        landing between the two resolutions paired version N+1's number
        with version N's manifest.  Simulate that interleaving by making
        every resolution after the first race with a concurrent save: with
        a single resolution the reported pair stays consistent."""
        registry = ModelRegistry(tmp_path / "registry")
        model = _random_hmm(0, "categorical")
        registry.save("m", model, metadata={"marker": 1})

        real_latest = ModelRegistry.latest_version
        calls = {"n": 0}

        def racing_latest(self, name):
            calls["n"] += 1
            if calls["n"] > 1:
                # a concurrent saver lands a new version before this
                # resolution completes
                next_marker = len(ModelRegistry.versions(self, name)) + 1
                ModelRegistry.save(self, name, model, metadata={"marker": next_marker})
            return real_latest(self, name)

        monkeypatch.setattr(ModelRegistry, "latest_version", racing_latest)
        description = registry.describe("m")
        assert calls["n"] == 1
        assert description["metadata"]["marker"] == description["version"]

    def test_empty_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        assert registry.list_models() == []
        assert registry.versions("anything") == []
        with pytest.raises(ValidationError, match="no versions"):
            registry.latest_version("anything")

    def test_save_skips_preexisting_version_directories(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("tagger", _random_hmm(0, "categorical"))
        # simulate a concurrent saver having claimed v0002 already
        (tmp_path / "registry" / "tagger" / "v0002").mkdir()
        version = registry.save("tagger", _random_hmm(1, "categorical"))
        assert version == 3
        registry.load("tagger", version=3)

    def test_list_models_skips_stray_directories(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("tagger", _random_hmm(0, "categorical"))
        (tmp_path / "registry" / ".cache").mkdir()
        (tmp_path / "registry" / "notes.txt").write_text("not a model")
        assert registry.list_models() == ["tagger"]

    def test_rejects_path_traversal_names(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        for bad in ("../evil", "a/b", ".hidden", ""):
            with pytest.raises(ValidationError, match="invalid model name"):
                registry.save(bad, _random_hmm(0, "categorical"))
