"""Unit tests for the toy dataset generator (paper Section 4.1)."""

import numpy as np
import pytest

from repro.datasets.toy import (
    TOY_MEANS,
    TOY_STARTPROB,
    TOY_TRANSMAT,
    generate_toy_dataset,
    sigma_sweep_values,
    toy_ground_truth_model,
)
from repro.exceptions import ValidationError


class TestGroundTruthModel:
    def test_paper_initial_distribution(self):
        model = toy_ground_truth_model()
        assert np.allclose(model.startprob, TOY_STARTPROB)
        assert np.isclose(model.startprob.sum(), 1.0)

    def test_transition_matrix_is_row_stochastic(self):
        assert np.allclose(TOY_TRANSMAT.sum(axis=1), 1.0)

    def test_emission_means_are_one_to_five(self):
        model = toy_ground_truth_model()
        assert np.allclose(model.emissions.means, TOY_MEANS)

    def test_sigma_parameter_sets_variance(self):
        model = toy_ground_truth_model(sigma=0.5)
        assert np.allclose(model.emissions.variances, 0.25)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValidationError):
            toy_ground_truth_model(sigma=0.0)

    def test_transition_rows_are_diverse(self):
        from repro.metrics.diversity import average_pairwise_bhattacharyya

        assert average_pairwise_bhattacharyya(TOY_TRANSMAT) > 0.1


class TestGenerateToyDataset:
    def test_default_paper_dimensions(self):
        data = generate_toy_dataset(seed=0)
        assert data.n_sequences == 300
        assert all(len(s) == 6 for s in data.observations)
        assert all(len(s) == 6 for s in data.states)

    def test_observations_cluster_near_state_means(self):
        data = generate_toy_dataset(n_sequences=50, sigma=0.025, seed=1)
        for states, obs in zip(data.states, data.observations):
            assert np.all(np.abs(obs - TOY_MEANS[states]) < 0.5)

    def test_reproducible_with_seed(self):
        a = generate_toy_dataset(n_sequences=5, seed=7)
        b = generate_toy_dataset(n_sequences=5, seed=7)
        assert all(np.allclose(x, y) for x, y in zip(a.observations, b.observations))
        assert all(np.array_equal(x, y) for x, y in zip(a.states, b.states))

    def test_different_seeds_differ(self):
        a = generate_toy_dataset(n_sequences=5, seed=1)
        b = generate_toy_dataset(n_sequences=5, seed=2)
        assert not np.allclose(a.observations[0], b.observations[0])

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValidationError):
            generate_toy_dataset(n_sequences=0)
        with pytest.raises(ValidationError):
            generate_toy_dataset(sequence_length=0)

    def test_flat_sigma_produces_overlapping_observations(self):
        data = generate_toy_dataset(n_sequences=50, sigma=3.0, seed=2)
        all_obs = np.concatenate(data.observations)
        # With sigma=3 the clusters overlap heavily: the pooled standard
        # deviation is far larger than the spread of the means alone.
        assert all_obs.std() > 2.0


class TestSigmaSweepValues:
    def test_paper_grid(self):
        values = sigma_sweep_values(50)
        assert values.shape == (50,)
        assert np.isclose(values[0], 0.025)
        assert np.isclose(values[1], 0.125)
        assert np.isclose(values[-1], 0.025 + 0.1 * 49)

    def test_rejects_non_positive_points(self):
        with pytest.raises(ValidationError):
            sigma_sweep_values(0)
