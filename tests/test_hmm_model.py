"""Unit tests for the HMM container class."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.hmm.emissions import CategoricalEmission, GaussianEmission
from repro.hmm.model import HMM


@pytest.fixture
def gaussian_hmm():
    emissions = GaussianEmission(np.array([0.0, 10.0]), np.array([1.0, 1.0]))
    return HMM(np.array([0.5, 0.5]), np.array([[0.9, 0.1], [0.1, 0.9]]), emissions)


class TestHMMConstruction:
    def test_valid_construction(self, gaussian_hmm):
        assert gaussian_hmm.n_states == 2

    def test_rejects_non_square_transmat(self):
        emissions = GaussianEmission(np.zeros(2), np.ones(2))
        with pytest.raises(ValidationError):
            HMM(np.array([0.5, 0.5]), np.array([[0.5, 0.5]]), emissions)

    def test_rejects_mismatched_emission_states(self):
        emissions = GaussianEmission(np.zeros(3), np.ones(3))
        with pytest.raises(ValidationError):
            HMM(np.array([0.5, 0.5]), np.full((2, 2), 0.5), emissions)

    def test_rejects_non_stochastic_startprob(self):
        emissions = GaussianEmission(np.zeros(2), np.ones(2))
        with pytest.raises(ValidationError):
            HMM(np.array([0.5, 0.6]), np.full((2, 2), 0.5), emissions)

    def test_random_init_produces_valid_model(self):
        emissions = CategoricalEmission.random_init(3, 5, seed=0)
        model = HMM.random_init(emissions, seed=0)
        assert np.isclose(model.startprob.sum(), 1.0)
        assert np.allclose(model.transmat.sum(axis=1), 1.0)

    def test_copy_is_deep(self, gaussian_hmm):
        clone = gaussian_hmm.copy()
        clone.transmat[0, 0] = 0.0
        clone.emissions.means[0] = 99.0
        assert gaussian_hmm.transmat[0, 0] == 0.9
        assert gaussian_hmm.emissions.means[0] == 0.0


class TestHMMInference:
    def test_log_likelihood_is_finite_and_negative(self, gaussian_hmm):
        seq = np.array([0.1, 0.2, 9.8])
        ll = gaussian_hmm.log_likelihood(seq)
        assert np.isfinite(ll)
        assert ll < 0

    def test_score_sums_over_sequences(self, gaussian_hmm):
        seqs = [np.array([0.0, 0.1]), np.array([10.0, 9.9])]
        total = gaussian_hmm.score(seqs)
        parts = sum(gaussian_hmm.log_likelihood(s) for s in seqs)
        assert np.isclose(total, parts)

    def test_decode_separable_observations(self, gaussian_hmm):
        seq = np.array([0.0, 0.2, 10.1, 9.7])
        path = gaussian_hmm.decode(seq)
        assert path.tolist() == [0, 0, 1, 1]

    def test_predict_returns_one_path_per_sequence(self, gaussian_hmm):
        paths = gaussian_hmm.predict([np.array([0.0]), np.array([10.0, 10.0])])
        assert len(paths) == 2
        assert paths[0].shape == (1,)
        assert paths[1].shape == (2,)

    def test_posteriors_prefer_closer_state(self, gaussian_hmm):
        stats = gaussian_hmm.posteriors(np.array([0.0, 10.0]))
        assert stats.gamma[0, 0] > 0.9
        assert stats.gamma[1, 1] > 0.9


class TestHMMSampling:
    def test_sample_length_and_state_range(self, gaussian_hmm):
        states, obs = gaussian_hmm.sample(20, seed=0)
        assert states.shape == (20,)
        assert len(obs) == 20
        assert set(np.unique(states)) <= {0, 1}

    def test_sample_respects_emission_means(self, gaussian_hmm):
        states, obs = gaussian_hmm.sample(200, seed=1)
        obs = np.asarray(obs)
        assert abs(obs[states == 0].mean() - 0.0) < 0.5
        assert abs(obs[states == 1].mean() - 10.0) < 0.5

    def test_sample_dataset_shapes(self, gaussian_hmm):
        states, observations = gaussian_hmm.sample_dataset(4, 7, seed=2)
        assert len(states) == 4
        assert all(s.shape == (7,) for s in states)
        assert all(o.shape == (7,) for o in observations)

    def test_sample_rejects_non_positive_length(self, gaussian_hmm):
        with pytest.raises(ValidationError):
            gaussian_hmm.sample(0)

    def test_sample_is_reproducible(self, gaussian_hmm):
        s1, o1 = gaussian_hmm.sample(10, seed=5)
        s2, o2 = gaussian_hmm.sample(10, seed=5)
        assert np.array_equal(s1, s2)
        assert np.allclose(o1, o2)

    def test_sticky_transitions_produce_long_runs(self):
        emissions = GaussianEmission(np.array([0.0, 10.0]), np.array([1.0, 1.0]))
        sticky = HMM(np.array([0.5, 0.5]), np.array([[0.99, 0.01], [0.01, 0.99]]), emissions)
        states, _ = sticky.sample(300, seed=3)
        switches = np.sum(states[1:] != states[:-1])
        assert switches < 30
