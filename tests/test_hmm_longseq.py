"""Long-sequence decode engine: chunked Viterbi stitching + checkpointed posteriors.

Property suites for :mod:`repro.hmm.longseq` and its wiring through the
backends, the engine (automatic long-sequence routing), the compiled corpus
(window-decode plans) and the model facade (``decode_long``):

* chunked Viterbi equals full-sequence Viterbi exactly whenever every
  window join stitched at an agreement run (and stays >= 99.9% token
  agreement otherwise);
* ``checkpointed_posteriors`` matches the log-domain reference to 1e-8 at
  every checkpoint stride;
* adversarial models exercise the posterior-argmax fallback and the
  overlap-widening escape hatch.
"""

import numpy as np
import pytest

from repro.core.config import (
    InferenceConfig,
    get_inference_config,
    set_inference_config,
)
from repro.exceptions import ValidationError
from repro.hmm import (
    HMM,
    ArraySource,
    CategoricalEmission,
    EmissionSource,
    GaussianEmission,
    LogDomainBackend,
    ScaledBatchedBackend,
    chunked_viterbi,
    checkpointed_posteriors,
    compute_posteriors_from_log,
    plan_windows,
    streaming_log_likelihood,
    viterbi_decode_from_log,
)
from repro.hmm.baum_welch import BaumWelchTrainer
from repro.hmm.engine import InferenceEngine
from repro.hmm.longseq import _find_agreement_cut, as_source, score_path
from repro.utils.maths import safe_log


@pytest.fixture
def long_routing_config():
    """Temporarily lower the long-sequence knobs so small tests route."""
    base = get_inference_config()
    set_inference_config(
        InferenceConfig(decode_window=256, decode_overlap=64, long_threshold=600)
    )
    yield
    set_inference_config(base)


def random_model(rng, n_states, self_weight=0.0):
    pi = rng.dirichlet(np.ones(n_states))
    transmat = rng.dirichlet(np.ones(n_states), size=n_states)
    if self_weight:
        transmat = self_weight * np.eye(n_states) + (1 - self_weight) * transmat
        transmat /= transmat.sum(axis=1, keepdims=True)
    return pi, transmat


# ------------------------------------------------------------------ #
# Window planning
# ------------------------------------------------------------------ #
class TestPlanWindows:
    def test_single_window_when_short(self):
        assert plan_windows(100, 256, 64) == [(0, 100)]
        assert plan_windows(256, 256, 64) == [(0, 256)]

    def test_full_coverage_equal_windows(self):
        for length in (257, 300, 448, 449, 1000, 4097):
            spans = plan_windows(length, 256, 64)
            assert spans[0][0] == 0 and spans[-1][1] == length
            assert all(e - s == 256 for s, e in spans)
            for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
                assert s1 > s0
                assert e0 - s1 >= 64  # overlap at least the requested one

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_windows(100, 100, 51)  # window < 2 * overlap
        with pytest.raises(ValidationError):
            plan_windows(100, 256, 0)
        with pytest.raises(ValidationError):
            plan_windows(0, 256, 64)


# ------------------------------------------------------------------ #
# Agreement-cut selection
# ------------------------------------------------------------------ #
class TestAgreementCut:
    def test_no_agreement_returns_none(self):
        assert _find_agreement_cut(np.array([0, 1, 0]), np.array([1, 0, 1])) is None

    def test_full_agreement_cuts_midpoint(self):
        cut = _find_agreement_cut(np.zeros(9, dtype=int), np.zeros(9, dtype=int))
        assert cut == 4

    def test_longest_run_wins(self):
        prev = np.array([0, 9, 9, 0, 0, 0, 0, 9])
        cur = np.array([0, 1, 1, 0, 0, 0, 0, 1])
        cut = _find_agreement_cut(prev, cur)
        assert 3 <= cut <= 6  # inside the length-4 run, not at index 0


# ------------------------------------------------------------------ #
# Chunked Viterbi vs full Viterbi
# ------------------------------------------------------------------ #
class TestChunkedViterbi:
    def test_property_random_models(self):
        rng = np.random.default_rng(7)
        backend = ScaledBatchedBackend(bucket_size=16)
        n_exact = 0
        trials = []
        for trial in range(10):
            n_states = int(rng.integers(2, 9))
            pi, transmat = random_model(rng, n_states, self_weight=0.7)
            length = int(rng.integers(700, 9000))
            table = rng.normal(0.0, 2.0, size=(length, n_states))
            trials.append((pi, transmat, table))
        # one genome-ish trial at the spec'd 50k scale
        pi, transmat = random_model(rng, 6, self_weight=0.8)
        trials.append((pi, transmat, rng.normal(0.0, 2.0, size=(50_000, 6))))

        for pi, transmat, table in trials:
            full_path, full_lj = backend.viterbi(pi, transmat, [table])[0]
            res = backend.viterbi_long(
                pi, transmat, table, window=256, overlap=64, group_size=8
            )
            assert res.path.shape == (table.shape[0],)
            assert (
                res.n_agreement_stitches + res.n_fallback_stitches
                == res.n_windows - 1
            )
            assert res.max_windows_resident <= 8
            if res.exact_stitch:
                n_exact += 1
                assert np.array_equal(res.path, full_path)
                assert res.log_joint == pytest.approx(full_lj, abs=1e-8)
            else:
                agreement = (res.path == full_path).mean()
                assert agreement >= 0.999
        # the overlap dwarfs these models' mixing lag: stitching should be
        # exact essentially always, not just "mostly agree"
        assert n_exact >= len(trials) - 1

    def test_single_window_is_bit_identical(self):
        rng = np.random.default_rng(3)
        pi, transmat = random_model(rng, 5)
        table = rng.normal(size=(120, 5))
        backend = ScaledBatchedBackend()
        full_path, full_lj = backend.viterbi(pi, transmat, [table])[0]
        res = backend.viterbi_long(pi, transmat, table, window=256, overlap=64)
        assert res.n_windows == 1
        assert np.array_equal(res.path, full_path)
        assert res.log_joint == full_lj  # bit-identical, not just close

    def test_generic_backend_path_matches_reference(self):
        rng = np.random.default_rng(11)
        pi, transmat = random_model(rng, 4, self_weight=0.6)
        table = rng.normal(0.0, 2.0, size=(1500, 4))
        ref_path, ref_lj = viterbi_decode_from_log(
            safe_log(pi), safe_log(transmat), table
        )
        for backend in (LogDomainBackend(), ScaledBatchedBackend(bucket_size=4)):
            res = backend.viterbi_long(
                pi, transmat, table, window=300, overlap=100, group_size=4
            )
            if res.exact_stitch:
                assert np.array_equal(res.path, ref_path)
                assert res.log_joint == pytest.approx(ref_lj, abs=1e-8)
            else:  # pragma: no cover - seed-pinned models stitch exactly
                assert (res.path == ref_path).mean() >= 0.999

    def test_score_path_matches_manual_joint(self):
        rng = np.random.default_rng(5)
        pi, transmat = random_model(rng, 3)
        table = rng.normal(size=(40, 3))
        path = rng.integers(0, 3, size=40)
        log_pi, log_A = safe_log(pi), safe_log(transmat)
        expected = log_pi[path[0]] + table[0, path[0]]
        for t in range(1, 40):
            expected += log_A[path[t - 1], path[t]] + table[t, path[t]]
        got = score_path(log_pi, log_A, ArraySource(table), path, block=7)
        assert got == pytest.approx(float(expected), abs=1e-10)

    def test_viterbi_joint_is_exact_not_window_sum(self):
        # The reported log_joint must re-score the *stitched* path, so it
        # matches the full-sequence optimum whenever stitching is exact.
        rng = np.random.default_rng(21)
        pi, transmat = random_model(rng, 4, self_weight=0.8)
        table = rng.normal(0.0, 2.0, size=(3000, 4))
        backend = ScaledBatchedBackend()
        _, full_lj = backend.viterbi(pi, transmat, [table])[0]
        res = backend.viterbi_long(pi, transmat, table, window=256, overlap=64)
        assert res.n_windows > 1
        if res.exact_stitch:
            assert res.log_joint == pytest.approx(full_lj, abs=1e-8)

    def test_group_size_bounds_resident_windows(self):
        rng = np.random.default_rng(13)
        pi, transmat = random_model(rng, 3, self_weight=0.7)
        table = rng.normal(size=(5000, 3))
        backend = ScaledBatchedBackend()
        res = backend.viterbi_long(
            pi, transmat, table, window=256, overlap=64, group_size=3
        )
        assert res.max_windows_resident <= 3
        assert res.n_windows > 3


# ------------------------------------------------------------------ #
# Adversarial models: fallback stitches + overlap widening
# ------------------------------------------------------------------ #
class TestAdversarialStitching:
    def test_alternating_model_falls_back_without_crashing(self):
        # Deterministic two-state alternation with uninformative emissions:
        # every window's decode locks to a phase set by its own start, so
        # adjacent windows starting at odd strides disagree at *every*
        # overlap position -> the posterior-argmax fallback must take over.
        pi = np.array([1.0, 0.0])
        transmat = np.array([[1e-12, 1.0 - 1e-12], [1.0 - 1e-12, 1e-12]])
        length = 1000
        table = np.zeros((length, 2))
        backend = ScaledBatchedBackend()
        res = backend.viterbi_long(
            pi, transmat, table, window=128, overlap=31, group_size=4
        )
        assert res.n_fallback_stitches > 0
        assert not res.exact_stitch
        assert res.path.shape == (length,)
        assert set(np.unique(res.path)) <= {0, 1}

    def test_low_self_transition_needs_wider_overlap(self):
        # A fast-switching model with weakly informative emissions: window
        # decodes take longer to forget their uniform start, so a tiny
        # overlap produces imperfect stitches while a wide one is exact.
        rng = np.random.default_rng(99)
        n_states = 4
        pi = np.full(n_states, 1.0 / n_states)
        transmat = np.full((n_states, n_states), 1.0 / n_states)
        transmat += 0.02 * rng.normal(size=(n_states, n_states))
        transmat = np.abs(transmat)
        transmat /= transmat.sum(axis=1, keepdims=True)
        length = 4000
        table = rng.normal(0.0, 0.05, size=(length, n_states))
        backend = ScaledBatchedBackend()
        full_path, _ = backend.viterbi(pi, transmat, [table])[0]

        narrow = backend.viterbi_long(pi, transmat, table, window=64, overlap=2)
        wide = backend.viterbi_long(pi, transmat, table, window=512, overlap=128)
        narrow_agree = (narrow.path == full_path).mean()
        wide_agree = (wide.path == full_path).mean()
        assert wide_agree >= narrow_agree
        assert wide.exact_stitch
        assert np.array_equal(wide.path, full_path)


# ------------------------------------------------------------------ #
# Checkpointed posteriors / streamed likelihood
# ------------------------------------------------------------------ #
class TestCheckpointedPosteriors:
    def test_property_matches_reference(self):
        rng = np.random.default_rng(17)
        for trial in range(8):
            n_states = int(rng.integers(2, 7))
            pi, transmat = random_model(rng, n_states, self_weight=0.5)
            length = int(rng.integers(2, 4000))
            table = rng.normal(0.0, 2.0, size=(length, n_states))
            ref = compute_posteriors_from_log(
                safe_log(pi), safe_log(transmat), table
            )
            got = checkpointed_posteriors(pi, transmat, table)
            assert np.allclose(got.gamma, ref.gamma, atol=1e-8)
            assert np.allclose(got.xi_sum, ref.xi_sum, atol=1e-8)
            assert got.log_likelihood == pytest.approx(
                ref.log_likelihood, abs=1e-8, rel=1e-10
            )

    @pytest.mark.parametrize("checkpoint", [1, 7, 64, 10_000])
    def test_checkpoint_stride_is_invisible(self, checkpoint):
        rng = np.random.default_rng(23)
        pi, transmat = random_model(rng, 5, self_weight=0.6)
        table = rng.normal(size=(517, 5))
        ref = compute_posteriors_from_log(safe_log(pi), safe_log(transmat), table)
        got = checkpointed_posteriors(pi, transmat, table, checkpoint=checkpoint)
        assert np.allclose(got.gamma, ref.gamma, atol=1e-8)
        assert np.allclose(got.xi_sum, ref.xi_sum, atol=1e-8)
        assert got.log_likelihood == pytest.approx(ref.log_likelihood, abs=1e-8)

    def test_streaming_log_likelihood_matches(self):
        rng = np.random.default_rng(29)
        pi, transmat = random_model(rng, 4)
        table = rng.normal(size=(1234, 4))
        ref = compute_posteriors_from_log(
            safe_log(pi), safe_log(transmat), table
        ).log_likelihood
        for block in (97, 1234, 100_000):
            got = streaming_log_likelihood(pi, transmat, table, block=block)
            assert got == pytest.approx(ref, abs=1e-8)

    def test_checkpoint_validation(self):
        rng = np.random.default_rng(1)
        pi, transmat = random_model(rng, 3)
        with pytest.raises(ValidationError):
            checkpointed_posteriors(
                pi, transmat, rng.normal(size=(10, 3)), checkpoint=0
            )


# ------------------------------------------------------------------ #
# Sources
# ------------------------------------------------------------------ #
class TestSources:
    def test_array_source_views(self):
        table = np.random.default_rng(0).normal(size=(50, 3))
        source = ArraySource(table)
        assert source.length == 50 and source.n_states == 3
        block = source.fetch(10, 20)
        assert block.base is not None  # a view, not a copy
        assert np.array_equal(block, table[10:20])

    def test_emission_source_scores_on_demand(self):
        rng = np.random.default_rng(4)
        emissions = CategoricalEmission(rng.dirichlet(np.ones(6), size=3))
        seq = rng.integers(0, 6, size=40)
        source = EmissionSource(emissions, seq)
        assert source.length == 40 and source.n_states == 3
        assert np.allclose(source.fetch(5, 15), emissions.log_likelihoods(seq[5:15]))

    def test_as_source_passthrough_and_coercion(self):
        table = np.zeros((5, 2))
        src = ArraySource(table)
        assert as_source(src) is src
        assert isinstance(as_source(table), ArraySource)

    def test_source_validation(self):
        with pytest.raises(Exception):
            ArraySource(np.zeros((0, 3)))
        with pytest.raises(Exception):
            ArraySource(np.zeros(7))


# ------------------------------------------------------------------ #
# Engine routing, corpus plans, model facade
# ------------------------------------------------------------------ #
class TestEngineRouting:
    def make_model(self, seed=0, n_states=4, vocab=8):
        rng = np.random.default_rng(seed)
        pi, transmat = random_model(rng, n_states, self_weight=0.8)
        emissions = CategoricalEmission(rng.dirichlet(np.ones(vocab), size=n_states))
        return HMM(pi, transmat, emissions), rng

    def test_batch_methods_route_long_sequences(self, long_routing_config):
        hmm, rng = self.make_model()
        vocab = hmm.emissions.n_symbols
        seqs = [rng.integers(0, vocab, size=t) for t in (40, 1500, 90, 2200)]

        base = get_inference_config()
        set_inference_config(InferenceConfig())  # no routing: reference run
        try:
            ref_paths = hmm.predict(seqs)
            ref_post = hmm.posteriors_batch(seqs)
            ref_score = hmm.score(seqs)
        finally:
            set_inference_config(base)

        paths = hmm.predict(seqs)
        for got, ref in zip(paths, ref_paths):
            assert np.array_equal(got, ref)
        for got, ref in zip(hmm.posteriors_batch(seqs), ref_post):
            assert np.allclose(got.gamma, ref.gamma, atol=1e-8)
            assert got.log_likelihood == pytest.approx(ref.log_likelihood, abs=1e-7)
        assert hmm.score(seqs) == pytest.approx(ref_score, abs=1e-6)

    def test_compiled_corpus_long_windows(self, long_routing_config):
        hmm, rng = self.make_model(seed=2)
        vocab = hmm.emissions.n_symbols
        seqs = [rng.integers(0, vocab, size=t) for t in (50, 1800, 70, 900)]
        corpus = hmm.compile(seqs)
        assert [lw.seq_index for lw in corpus.long_windows] == [1, 3]
        assert corpus.long_windows[0].length == 1800
        assert corpus.long_windows[0].n_windows > 1
        # short sequences still bucket normally
        assert sum(len(b.idx) for b in corpus.buckets) == 2

        base = get_inference_config()
        set_inference_config(InferenceConfig())
        try:
            ref_paths = hmm.predict(seqs)
            ref_score = hmm.score(seqs)
            ref_post = hmm.posteriors_batch(seqs)
        finally:
            set_inference_config(base)

        for got, ref in zip(hmm.predict_corpus(corpus), ref_paths):
            assert np.array_equal(got, ref)
        assert hmm.score_corpus(corpus) == pytest.approx(ref_score, abs=1e-6)

        engine = hmm.inference_engine
        scores_ext = corpus.score(hmm.emissions)
        cp = engine.posteriors_corpus(
            hmm.startprob, hmm.transmat, corpus, scores_ext
        )
        gamma_ref = np.concatenate([r.gamma for r in ref_post])
        assert np.allclose(cp.gamma_concat, gamma_ref, atol=1e-8)
        assert np.allclose(
            cp.start_counts, sum(r.gamma[0] for r in ref_post), atol=1e-8
        )
        assert np.allclose(cp.xi_sum, sum(r.xi_sum for r in ref_post), atol=1e-6)

    def test_em_training_with_long_sequence(self, long_routing_config):
        rng = np.random.default_rng(6)
        n_states, vocab = 3, 6
        emissions = CategoricalEmission(rng.dirichlet(np.ones(vocab), size=n_states))
        pi, transmat = random_model(rng, n_states, self_weight=0.5)
        hmm = HMM(pi, transmat, emissions)
        seqs = [rng.integers(0, vocab, size=t) for t in (60, 1200, 80)]
        trainer = BaumWelchTrainer(max_iter=3)
        result = trainer.fit(hmm, seqs)
        lls = result.history
        assert len(lls) >= 2
        assert all(b >= a - 1e-8 for a, b in zip(lls, lls[1:]))

    def test_engine_long_entry_points(self, long_routing_config):
        hmm, rng = self.make_model(seed=9)
        vocab = hmm.emissions.n_symbols
        seq = rng.integers(0, vocab, size=2000)
        table = hmm.emissions.log_likelihoods(seq)
        engine = InferenceEngine(backend="scaled")
        res = engine.viterbi_long(hmm.startprob, hmm.transmat, table)
        assert res.window == 256 and res.overlap == 64  # config knobs
        post = engine.posteriors_long(hmm.startprob, hmm.transmat, table)
        ref = compute_posteriors_from_log(
            safe_log(hmm.startprob), safe_log(hmm.transmat), table
        )
        assert np.allclose(post.gamma, ref.gamma, atol=1e-8)
        ll = engine.log_likelihood_long(hmm.startprob, hmm.transmat, table)
        assert ll == pytest.approx(ref.log_likelihood, abs=1e-8)

    def test_decode_long_never_materializes_table(self, long_routing_config):
        hmm, rng = self.make_model(seed=12)
        vocab = hmm.emissions.n_symbols
        seq = rng.integers(0, vocab, size=3000)
        res = hmm.decode_long(seq)
        full = hmm.decode(seq)
        if res.exact_stitch:
            assert np.array_equal(res.path, full)
        else:  # pragma: no cover - seed-pinned model stitches exactly
            assert (res.path == full).mean() >= 0.999

    def test_decode_long_gaussian_emissions(self, long_routing_config):
        rng = np.random.default_rng(15)
        n_states = 3
        pi, transmat = random_model(rng, n_states, self_weight=0.8)
        emissions = GaussianEmission(
            means=np.array([-2.0, 0.0, 2.0]), variances=np.ones(n_states)
        )
        hmm = HMM(pi, transmat, emissions)
        seq = rng.normal(size=1500)
        res = hmm.decode_long(seq)
        assert np.array_equal(res.path, hmm.decode(seq))


# ------------------------------------------------------------------ #
# Config / corpus validation
# ------------------------------------------------------------------ #
class TestLongConfigValidation:
    def test_decode_window_overlap_constraint(self):
        with pytest.raises(ValidationError):
            InferenceConfig(decode_window=100, decode_overlap=51)
        with pytest.raises(ValidationError):
            InferenceConfig(decode_overlap=0)
        with pytest.raises(ValidationError):
            InferenceConfig(long_threshold=100, decode_window=4096)

    def test_corpus_validates_long_knobs(self):
        from repro.hmm.corpus import CompiledCorpus

        with pytest.raises(ValidationError):
            CompiledCorpus(
                [np.zeros(5, dtype=np.int64)],
                long_threshold=10,
                decode_window=64,
                decode_overlap=33,
            )
        with pytest.raises(ValidationError):
            CompiledCorpus(
                [np.zeros(5, dtype=np.int64)],
                long_threshold=32,
                decode_window=64,
            )

    def test_chunked_viterbi_group_size_validation(self):
        rng = np.random.default_rng(0)
        pi, transmat = random_model(rng, 3)
        with pytest.raises(ValidationError):
            chunked_viterbi(
                safe_log(pi),
                safe_log(transmat),
                rng.normal(size=(10, 3)),
                window=8,
                overlap=2,
                group_size=0,
                decode_bucket=lambda *a: [],
            )
