"""StreamingService: batched ticks from concurrent clients, decoder equivalence."""

import threading

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.exceptions import ValidationError
from repro.hmm import HMM, BernoulliEmission, CategoricalEmission
from repro.serving import StreamingDecoder, StreamingService


def _random_hmm(seed, n_states=4, n_symbols=8, family="categorical"):
    rng = np.random.default_rng(seed)
    if family == "categorical":
        emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    else:
        emissions = BernoulliEmission(rng.uniform(0.1, 0.9, size=(n_states, 6)))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def model():
    return _random_hmm(0)


def _observations(model, n_streams, length, seed=3):
    rng = np.random.default_rng(seed)
    n_symbols = model.emissions.emission_probs.shape[1]
    return [rng.integers(0, n_symbols, size=length) for _ in range(n_streams)]


def _decoder_reference(model, observations, lag):
    results = []
    for obs in observations:
        decoder = StreamingDecoder(model, lag=lag)
        steps = decoder.push_many(obs)
        results.append((steps, decoder.finish()))
    return results


def _assert_stream_equal(got_steps, got_result, want_steps, want_result):
    assert len(got_steps) == len(want_steps)
    for got, want in zip(got_steps, want_steps):
        np.testing.assert_array_equal(got.filtering, want.filtering)
        assert got.finalized == want.finalized
        assert got.log_likelihood == want.log_likelihood
    assert np.array_equal(got_result.path, want_result.path)
    np.testing.assert_array_equal(got_result.filtering, want_result.filtering)
    assert got_result.log_likelihood == want_result.log_likelihood


class TestEquivalence:
    def test_interleaved_streams_match_dedicated_decoders(self, model):
        observations = _observations(model, n_streams=5, length=20)
        reference = _decoder_reference(model, observations, lag=4)
        with StreamingService(model, lag=4) as service:
            streams = [service.open() for _ in observations]
            # interleave pushes round-robin, submitting before waiting so
            # the dispatcher coalesces them into multi-stream ticks
            step_futures = [[] for _ in streams]
            for t in range(20):
                for i, stream in enumerate(streams):
                    step_futures[i].append(stream.submit_push(observations[i][t]))
            steps = [[f.result(timeout=10) for f in futs] for futs in step_futures]
            results = [stream.finish() for stream in streams]
        for i, (want_steps, want_result) in enumerate(reference):
            _assert_stream_equal(steps[i], results[i], want_steps, want_result)

    def test_concurrent_client_threads(self, model):
        observations = _observations(model, n_streams=8, length=15, seed=11)
        reference = _decoder_reference(model, observations, lag=6)
        results: dict[int, tuple] = {}
        with StreamingService(model, lag=6) as service:

            def client(index):
                stream = service.open()
                steps = [stream.push(obs) for obs in observations[index]]
                results[index] = (steps, stream.finish())

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(observations))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for i, (want_steps, want_result) in enumerate(reference):
            _assert_stream_equal(results[i][0], results[i][1], want_steps, want_result)

    def test_mixed_lags_per_stream(self, model):
        observations = _observations(model, n_streams=3, length=12, seed=5)
        lags = [2, 6, None]
        with StreamingService(model) as service:
            streams = [service.open(lag=lag) for lag in lags]
            for t in range(12):
                for stream, obs in zip(streams, observations):
                    stream.push(obs[t])
            results = [stream.finish() for stream in streams]
        for obs, lag, got in zip(observations, lags, results):
            decoder = StreamingDecoder(model, lag=lag)
            decoder.push_many(obs)
            want = decoder.finish()
            assert np.array_equal(got.path, want.path)
            assert got.log_likelihood == want.log_likelihood

    def test_bernoulli_observations(self):
        model = _random_hmm(2, family="bernoulli")
        rng = np.random.default_rng(7)
        observations = [(rng.random((10, 6)) < 0.5).astype(np.float64) for _ in range(3)]
        with StreamingService(model, lag=3) as service:
            streams = [service.open() for _ in observations]
            for t in range(10):
                for stream, obs in zip(streams, observations):
                    stream.push(obs[t])
            results = [stream.finish() for stream in streams]
        for obs, got in zip(observations, results):
            decoder = StreamingDecoder(model, lag=3)
            decoder.push_many(obs)
            want = decoder.finish()
            assert np.array_equal(got.path, want.path)


class TestCoalescing:
    def test_pre_submitted_pushes_form_batched_ticks(self, model):
        observations = _observations(model, n_streams=16, length=10)
        config = ServingConfig(max_batch_size=64, max_wait_ms=20.0)
        with StreamingService(model, lag=4, config=config) as service:
            streams = [service.open() for _ in observations]
            futures = []
            for t in range(10):
                for stream, obs in zip(streams, observations):
                    futures.append(stream.submit_push(obs[t]))
            for future in futures:
                future.result(timeout=10)
            stats = service.stats.snapshot()
        assert stats["n_requests"] == 160
        # 16 concurrent streams per wave: ticks must be genuinely batched
        assert stats["mean_batch_size"] > 2.0
        assert stats["max_batch_size"] > 2

    def test_same_stream_never_advances_twice_per_tick(self, model):
        """Back-to-back pushes of ONE stream in one drained batch must land
        in separate ticks, preserving order — outputs prove it: they match
        the strictly sequential decoder."""
        obs = _observations(model, n_streams=1, length=30)[0]
        config = ServingConfig(max_batch_size=64, max_wait_ms=20.0)
        with StreamingService(model, lag=4, config=config) as service:
            stream = service.open()
            futures = [stream.submit_push(o) for o in obs]
            steps = [f.result(timeout=10) for f in futures]
            result = stream.finish()
        decoder = StreamingDecoder(model, lag=4)
        want_steps = decoder.push_many(obs)
        _assert_stream_equal(steps, result, want_steps, decoder.finish())


class TestLifecycle:
    def test_n_streams_and_slot_reuse(self, model):
        obs = _observations(model, n_streams=2, length=4)
        with StreamingService(model, lag=2) as service:
            first = service.open()
            assert service.n_streams == 1
            for o in obs[0]:
                first.push(o)
            first.finish()
            second = service.open()  # reuses the freed slot
            assert service.n_streams == 1
            for o in obs[1]:
                second.push(o)
            second.finish()

    def test_push_after_finish_raises(self, model):
        with StreamingService(model) as service:
            stream = service.open()
            stream.push(np.int64(0))
            stream.finish()
            with pytest.raises(ValidationError, match="finished"):
                stream.push(np.int64(1))
            with pytest.raises(ValidationError, match="finished"):
                stream.finish()

    def test_streaming_lag_comes_from_the_given_config(self, model):
        """Regression: the service used to read the process-global config's
        streaming_lag instead of the config it was constructed with."""
        obs = _observations(model, n_streams=1, length=10)[0]
        config = ServingConfig(streaming_lag=2)
        with StreamingService(model, config=config) as service:
            stream = service.open()
            steps = [stream.push(o) for o in obs]
            result = stream.finish()
        decoder = StreamingDecoder(model, lag=2)
        want_steps = decoder.push_many(obs)
        _assert_stream_equal(steps, result, want_steps, decoder.finish())
        # lag 2 genuinely finalizes labels before finish (unlike default 32)
        assert any(step.finalized for step in steps)

    def test_finish_without_observations_raises(self, model):
        with StreamingService(model) as service:
            stream = service.open()
            with pytest.raises(ValidationError, match="no observations"):
                stream.finish()

    def test_close_flushes_pending_pushes(self, model):
        obs = _observations(model, n_streams=1, length=8)[0]
        service = StreamingService(model, lag=2)
        stream = service.open()
        futures = [stream.submit_push(o) for o in obs]
        finish_future = stream.submit_finish()
        assert service.close(timeout=10.0) is True
        for future in futures:
            future.result(timeout=1)
        decoder = StreamingDecoder(model, lag=2)
        decoder.push_many(obs)
        assert np.array_equal(finish_future.result(timeout=1).path, decoder.finish().path)

    def test_keep_history_false_returns_final_window_only(self, model):
        obs = _observations(model, n_streams=1, length=12)[0]
        with StreamingService(model, lag=4, keep_history=False) as service:
            stream = service.open()
            finalized = []
            for o in obs:
                step = stream.push(o)
                finalized.extend(state for _, state in step.finalized)
            result = stream.finish()
        decoder = StreamingDecoder(model, lag=4)
        decoder.push_many(obs)
        want = decoder.finish()
        full = np.concatenate([np.asarray(finalized, dtype=np.int64), result.path])
        assert np.array_equal(full, want.path)
        assert result.filtering.shape[0] == 0


class TestFailureIsolation:
    def test_bad_observation_fails_alone_and_stream_survives(self, model):
        obs = _observations(model, n_streams=2, length=6)
        with StreamingService(model, lag=2) as service:
            healthy, wounded = service.open(), service.open()
            # interleave a malformed symbol into one stream's pushes while
            # both are coalesced into shared ticks
            futures = []
            for t in range(3):
                futures.append(healthy.submit_push(obs[0][t]))
                futures.append(wounded.submit_push(obs[1][t]))
            bad = wounded.submit_push(np.int64(999))  # out of vocabulary
            for t in range(3, 6):
                futures.append(healthy.submit_push(obs[0][t]))
                futures.append(wounded.submit_push(obs[1][t]))
            with pytest.raises(Exception):
                bad.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
            healthy_result = healthy.finish()
            wounded_result = wounded.finish()
        # the failed push never advanced its stream: both streams decode as
        # if the bad observation was never sent
        for got, seq in ((healthy_result, obs[0]), (wounded_result, obs[1])):
            decoder = StreamingDecoder(model, lag=2)
            decoder.push_many(seq)
            assert np.array_equal(got.path, decoder.finish().path)


class TestWaveBatching:
    def test_push_many_matches_per_token_submission(self, model):
        obs = _observations(model, n_streams=1, length=24)[0]
        with StreamingService(model, lag=4) as service:
            stream = service.open()
            steps = []
            for start in range(0, len(obs), 8):
                steps.extend(stream.push_many(obs[start : start + 8]))
            result = stream.finish()
        decoder = StreamingDecoder(model, lag=4)
        want_steps = decoder.push_many(obs)
        _assert_stream_equal(steps, result, want_steps, decoder.finish())

    def test_wave_is_one_queue_entry(self, model):
        """A 10-token wave pays ONE queue admission, not ten."""
        obs = _observations(model, n_streams=1, length=30)[0]
        with StreamingService(model, lag=4) as service:
            stream = service.open()
            for start in range(0, 30, 10):
                stream.push_many(obs[start : start + 10])
            stats = service.stats.snapshot()
        # every token is served (per-tick accounting unchanged) ...
        assert stats["n_requests"] == 30
        # ... but the queue/latency machinery sees one entry per wave
        # (plus the open() control request): 1 + 3, not 1 + 30
        assert stats["latency"]["count"] == 4
        waits = stats["queue_wait_by_policy"]
        assert sum(hist["count"] for hist in waits.values()) == 4

    def test_waves_coalesce_with_single_pushes(self, model):
        obs = _observations(model, n_streams=2, length=12)
        config = ServingConfig(max_batch_size=64, max_wait_ms=20.0)
        with StreamingService(model, lag=3, config=config) as service:
            wavy, ticky = service.open(), service.open()
            futures = [
                wavy.submit_push_many(obs[0][:6]),
                *[ticky.submit_push(o) for o in obs[1][:6]],
                wavy.submit_push_many(obs[0][6:]),
                *[ticky.submit_push(o) for o in obs[1][6:]],
            ]
            for future in futures:
                future.result(timeout=10)
            results = [wavy.finish(), ticky.finish()]
        for got, seq in zip(results, obs):
            decoder = StreamingDecoder(model, lag=3)
            decoder.push_many(seq)
            assert np.array_equal(got.path, decoder.finish().path)

    def test_failed_token_stops_the_wave_but_not_the_stream(self, model):
        """A wave failing at token k keeps tokens < k applied; the stream
        stays usable and later decodes as if the bad token was never sent."""
        obs = _observations(model, n_streams=1, length=12)[0]
        with StreamingService(model, lag=2) as service:
            stream = service.open()
            stream.push_many(obs[:4])
            poisoned = np.concatenate([obs[4:8], np.asarray([999])])
            with pytest.raises(Exception):
                stream.push_many(poisoned)
            stream.push_many(obs[8:])
            result = stream.finish()
        decoder = StreamingDecoder(model, lag=2)
        decoder.push_many(obs)
        assert np.array_equal(result.path, decoder.finish().path)

    def test_empty_wave_rejected(self, model):
        with StreamingService(model) as service:
            stream = service.open()
            with pytest.raises(ValidationError, match="at least one"):
                stream.submit_push_many([])

    def test_wave_after_finish_raises(self, model):
        with StreamingService(model) as service:
            stream = service.open()
            stream.push(np.int64(0))
            stream.finish()
            with pytest.raises(ValidationError, match="finished"):
                stream.submit_push_many([0, 1])
