"""Unit tests for the DPP transition prior and its M-step updater."""

import numpy as np
import pytest

from repro.core.config import DHMMConfig
from repro.core.transition_prior import DiversityTransitionUpdater, DPPTransitionPrior
from repro.dpp.log_det import dpp_log_prior
from repro.exceptions import ValidationError
from repro.metrics.diversity import average_pairwise_bhattacharyya
from repro.utils.maths import normalize_rows, safe_log


class TestDPPTransitionPrior:
    def test_alpha_zero_gives_zero_prior_and_gradient(self, random_transition_matrix):
        prior = DPPTransitionPrior(alpha=0.0)
        assert prior.log_prior(random_transition_matrix) == 0.0
        assert np.allclose(prior.gradient(random_transition_matrix), 0.0)

    def test_log_prior_scales_linearly_with_alpha(self, random_transition_matrix):
        p1 = DPPTransitionPrior(alpha=1.0).log_prior(random_transition_matrix)
        p3 = DPPTransitionPrior(alpha=3.0).log_prior(random_transition_matrix)
        assert np.isclose(p3, 3.0 * p1)

    def test_prior_prefers_diverse_matrices(self):
        prior = DPPTransitionPrior(alpha=1.0)
        diverse = np.eye(4) * 0.9 + 0.1 / 3
        diverse /= diverse.sum(axis=1, keepdims=True)
        collapsed = np.full((4, 4), 0.25)
        assert prior.log_prior(diverse) > prior.log_prior(collapsed)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            DPPTransitionPrior(alpha=-1.0)
        with pytest.raises(ValidationError):
            DPPTransitionPrior(rho=0.0)
        with pytest.raises(ValidationError):
            DPPTransitionPrior(jitter=-1.0)


class TestDiversityTransitionUpdater:
    def make_counts(self, seed=0, k=4, scale=50.0):
        rng = np.random.default_rng(seed)
        return rng.uniform(1.0, scale, size=(k, k))

    def test_alpha_zero_matches_normalized_counts(self):
        counts = self.make_counts()
        updater = DiversityTransitionUpdater(DPPTransitionPrior(alpha=0.0))
        out = updater.update(counts, np.full((4, 4), 0.25))
        assert np.allclose(out, normalize_rows(counts))

    def test_update_is_row_stochastic(self):
        counts = self.make_counts(1)
        updater = DiversityTransitionUpdater(DPPTransitionPrior(alpha=5.0))
        out = updater.update(counts, normalize_rows(counts))
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.all(out >= 0)

    def test_map_objective_not_below_ml_solution(self):
        counts = self.make_counts(2)
        prior = DPPTransitionPrior(alpha=10.0)
        updater = DiversityTransitionUpdater(prior)
        ml_solution = normalize_rows(counts)
        out = updater.update(counts, ml_solution)
        assert updater.objective(counts, out) >= updater.objective(counts, ml_solution) - 1e-9

    def test_prior_increases_diversity_for_collapsed_counts(self):
        # Expected counts whose rows are identical: the ML update collapses,
        # the diversity-regularized update must spread the rows apart.
        counts = np.tile(np.array([10.0, 6.0, 4.0, 2.0]), (4, 1))
        prior = DPPTransitionPrior(alpha=50.0)
        updater = DiversityTransitionUpdater(prior, DHMMConfig(alpha=50.0, max_inner_iter=100))
        out = updater.update(counts, normalize_rows(counts))
        ml_diversity = average_pairwise_bhattacharyya(normalize_rows(counts))
        assert average_pairwise_bhattacharyya(out) > ml_diversity

    def test_larger_alpha_gives_higher_prior_value(self):
        counts = self.make_counts(3)
        weak = DiversityTransitionUpdater(DPPTransitionPrior(alpha=1.0)).update(
            counts, normalize_rows(counts)
        )
        strong = DiversityTransitionUpdater(
            DPPTransitionPrior(alpha=200.0), DHMMConfig(alpha=200.0, max_inner_iter=100)
        ).update(counts, normalize_rows(counts))
        assert dpp_log_prior(strong) >= dpp_log_prior(weak) - 1e-6

    def test_objective_combines_likelihood_and_prior(self):
        counts = self.make_counts(4)
        prior = DPPTransitionPrior(alpha=2.0)
        updater = DiversityTransitionUpdater(prior)
        A = normalize_rows(counts)
        expected = float(np.sum(counts * safe_log(A))) + prior.log_prior(A)
        assert np.isclose(updater.objective(counts, A), expected)
