"""Unit tests for state-histogram statistics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.histograms import (
    effective_state_count,
    histogram_distance,
    state_histogram,
)


class TestStateHistogram:
    def test_counts_states_across_sequences(self):
        labels = [np.array([0, 1, 1]), np.array([2, 2, 2])]
        hist = state_histogram(labels, 3)
        assert hist.tolist() == [1.0, 2.0, 3.0]

    def test_unused_states_are_zero(self):
        hist = state_histogram([np.array([0])], 4)
        assert hist.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValidationError):
            state_histogram([np.array([3])], 2)

    def test_rejects_non_positive_n_states(self):
        with pytest.raises(ValidationError):
            state_histogram([np.array([0])], 0)


class TestEffectiveStateCount:
    def test_threshold_filters_rare_states(self):
        labels = [np.concatenate([np.zeros(100, dtype=int), np.ones(10, dtype=int)])]
        assert effective_state_count(labels, 2, threshold=50) == 1
        assert effective_state_count(labels, 2, threshold=5) == 2

    def test_paper_default_threshold(self):
        labels = [np.repeat(np.arange(5), 60)]
        assert effective_state_count(labels, 5) == 5

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValidationError):
            effective_state_count([np.array([0])], 1, threshold=-1)


class TestHistogramDistance:
    def test_identical_histograms_have_zero_distance(self):
        h = np.array([10.0, 20.0, 30.0])
        assert histogram_distance(h, h) == 0.0

    def test_disjoint_histograms_have_distance_one(self):
        a = np.array([10.0, 0.0])
        b = np.array([0.0, 7.0])
        assert np.isclose(histogram_distance(a, b), 1.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 3.0])
        b = np.array([2.0, 2.0])
        assert np.isclose(histogram_distance(a, b), histogram_distance(10 * a, 5 * b))

    def test_symmetric(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([3.0, 2.0, 1.0])
        assert np.isclose(histogram_distance(a, b), histogram_distance(b, a))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            histogram_distance(np.ones(2), np.ones(3))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValidationError):
            histogram_distance(np.zeros(2), np.ones(2))
