"""repro-lint over the repository's own source tree must be clean.

This is the acceptance gate the CI ``lint`` job re-runs from the console
entry: zero findings (including suppression hygiene — every ``ignore``
pragma justified and used), zero parse errors, the full rule catalogue
active.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.framework import (
    EXIT_CLEAN,
    all_rules,
    lint_paths,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def test_source_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.errors == []
    details = "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    )
    assert result.findings == [], f"repro-lint findings:\n{details}"
    assert result.exit_code == EXIT_CLEAN


def test_whole_tree_was_scanned():
    result = lint_paths([SRC])
    assert result.n_files >= 75  # the full src/repro package, not a subset


def test_rule_catalogue_size():
    # The issue's acceptance floor: at least eight distinct active rules.
    assert len(all_rules()) >= 8


def test_annotated_kernels_are_hot():
    backends = (SRC / "repro" / "hmm" / "backends.py").read_text()
    assert "# repro: hot-path" in backends
    assert "# repro: loop-ok[" in backends
    scheduler = (SRC / "repro" / "serving" / "scheduler.py").read_text()
    assert "# repro: guarded-by[_lock]" in scheduler
    assert "# repro: guarded-by[_lifecycle_lock]" in scheduler
