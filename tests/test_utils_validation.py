"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.utils.validation import (
    check_binary_sequences,
    check_probability_matrix,
    check_probability_vector,
    check_real_sequences,
    check_sequences,
    check_square_matrix,
)


class TestCheckProbabilityVector:
    def test_accepts_valid_distribution(self):
        out = check_probability_vector([0.2, 0.3, 0.5])
        assert out.dtype == np.float64
        assert np.isclose(out.sum(), 1.0)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError, match="negative"):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probability_vector([0.2, 0.2])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            check_probability_vector([[0.5, 0.5]])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_probability_vector([np.nan, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_probability_vector([])


class TestCheckProbabilityMatrix:
    def test_accepts_row_stochastic(self):
        m = np.array([[0.5, 0.5], [0.1, 0.9]])
        assert np.allclose(check_probability_matrix(m), m)

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValidationError, match="row 1"):
            check_probability_matrix([[0.5, 0.5], [0.2, 0.2]])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="negative"):
            check_probability_matrix([[1.2, -0.2], [0.5, 0.5]])

    def test_rejects_3d_input(self):
        with pytest.raises(ValidationError, match="two-dimensional"):
            check_probability_matrix(np.ones((2, 2, 2)) / 2)


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        m = np.eye(3)
        assert check_square_matrix(m).shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(DimensionMismatchError):
            check_square_matrix(np.ones((2, 3)))

    def test_rejects_non_finite(self):
        m = np.eye(2)
        m[0, 0] = np.inf
        with pytest.raises(ValidationError):
            check_square_matrix(m)


class TestCheckSequences:
    def test_accepts_list_of_lists(self):
        out = check_sequences([[0, 1, 2], [1, 1]])
        assert len(out) == 2
        assert out[0].dtype == np.int64

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValidationError, match="outside"):
            check_sequences([[0, 5]], n_symbols=3)

    def test_rejects_too_short(self):
        with pytest.raises(ValidationError, match="length"):
            check_sequences([[1]], min_length=2)

    def test_rejects_empty_collection(self):
        with pytest.raises(ValidationError, match="at least one"):
            check_sequences([])

    def test_rejects_2d_sequence(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            check_sequences([np.zeros((2, 2), dtype=int)])


class TestCheckRealSequences:
    def test_accepts_float_sequences(self):
        out = check_real_sequences([[0.5, 1.5], [2.0]])
        assert out[1][0] == 2.0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_real_sequences([[np.nan]])


class TestCheckBinarySequences:
    def test_accepts_binary_matrices(self):
        seq = np.array([[0.0, 1.0], [1.0, 1.0]])
        out = check_binary_sequences([seq])
        assert out[0].shape == (2, 2)

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValidationError, match="0/1"):
            check_binary_sequences([np.array([[0.5, 1.0]])])

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(DimensionMismatchError):
            check_binary_sequences([np.zeros((3, 4))], n_features=5)
