"""Property-based tests on cross-module invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpp.kernels import transition_kernel_matrix
from repro.dpp.log_det import dpp_log_prior
from repro.hmm.emissions import CategoricalEmission
from repro.hmm.forward_backward import compute_posteriors
from repro.hmm.model import HMM
from repro.hmm.viterbi import viterbi_decode
from repro.metrics.accuracy import many_to_one_accuracy, one_to_one_accuracy
from repro.metrics.diversity import average_pairwise_bhattacharyya
from repro.optim.simplex import project_rows_to_simplex
from repro.utils.maths import safe_log


def random_hmm(seed, n_states=3, n_symbols=4):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    startprob = rng.dirichlet(np.ones(n_states))
    transmat = rng.dirichlet(np.ones(n_states), size=n_states)
    return HMM(startprob, transmat, emissions)


class TestHmmInvariants:
    @given(st.integers(0, 10_000), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_posteriors_normalize_and_likelihood_finite(self, seed, length):
        model = random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        stats = model.posteriors(np.asarray(obs))
        assert np.allclose(stats.gamma.sum(axis=1), 1.0, atol=1e-8)
        assert np.isfinite(stats.log_likelihood)
        assert stats.log_likelihood <= 0.0 + 1e-9

    @given(st.integers(0, 10_000), st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_viterbi_path_probability_bounded_by_likelihood(self, seed, length):
        model = random_hmm(seed)
        _, obs = model.sample(length, seed=seed)
        log_obs = model.emissions.log_likelihoods(np.asarray(obs))
        path, logp = viterbi_decode(model.startprob, model.transmat, log_obs)
        stats = compute_posteriors(model.startprob, model.transmat, log_obs)
        assert logp <= stats.log_likelihood + 1e-9
        assert path.shape == (length,)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_expected_transition_counts_are_consistent(self, seed):
        model = random_hmm(seed)
        _, obs = model.sample(12, seed=seed)
        stats = model.posteriors(np.asarray(obs))
        # Total expected transitions equal T - 1.
        assert np.isclose(stats.xi_sum.sum(), 11.0, atol=1e-6)
        assert np.all(stats.xi_sum >= -1e-12)


class TestDppInvariants:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_kernel_psd_and_prior_nonpositive(self, seed, k):
        A = np.random.default_rng(seed).dirichlet(np.ones(k), size=k)
        K = transition_kernel_matrix(A)
        assert np.all(np.linalg.eigvalsh(K) >= -1e-8)
        assert dpp_log_prior(A) <= 1e-9

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_collapsed_rows_never_beat_the_original_matrix(self, seed, k):
        # Replacing every row by the common mean row (a fully collapsed
        # transition matrix) can never have a higher diversity prior than
        # the original matrix.
        A = np.random.default_rng(seed).dirichlet(np.ones(k) * 0.8, size=k)
        collapsed = np.tile(A.mean(axis=0), (k, 1))
        assert dpp_log_prior(collapsed) <= dpp_log_prior(A) + 1e-9
        assert average_pairwise_bhattacharyya(collapsed) <= average_pairwise_bhattacharyya(A) + 1e-9


class TestMetricInvariants:
    @given(st.integers(0, 10_000), st.integers(5, 40), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounds_and_ordering(self, seed, length, k):
        rng = np.random.default_rng(seed)
        true = rng.integers(0, k, size=length)
        pred = rng.integers(0, k, size=length)
        one = one_to_one_accuracy(true, pred, n_states=k)
        many = many_to_one_accuracy(true, pred, n_states=k)
        assert 0.0 <= one <= 1.0
        assert one <= many + 1e-12

    @given(st.integers(0, 10_000), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_one_to_one_accuracy_invariant_to_relabeling(self, seed, k):
        rng = np.random.default_rng(seed)
        true = rng.integers(0, k, size=30)
        pred = rng.integers(0, k, size=30)
        perm = rng.permutation(k)
        relabeled = perm[pred]
        assert np.isclose(
            one_to_one_accuracy(true, pred, n_states=k),
            one_to_one_accuracy(true, relabeled, n_states=k),
        )


class TestOptimInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_projection_preserves_points_already_on_simplex(self, seed):
        A = np.random.default_rng(seed).dirichlet(np.ones(4), size=3)
        assert np.allclose(project_rows_to_simplex(A), A, atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_log_likelihood_of_uniform_observation_model(self, seed):
        # If every state emits uniformly, the data log-likelihood equals
        # T * log(1/V) regardless of transition structure.
        rng = np.random.default_rng(seed)
        n_states, n_symbols, length = 3, 4, 6
        emissions = CategoricalEmission(np.full((n_states, n_symbols), 1.0 / n_symbols))
        model = HMM(
            rng.dirichlet(np.ones(n_states)),
            rng.dirichlet(np.ones(n_states), size=n_states),
            emissions,
        )
        obs = rng.integers(0, n_symbols, size=length)
        assert np.isclose(model.log_likelihood(obs), length * np.log(1.0 / n_symbols), atol=1e-8)
