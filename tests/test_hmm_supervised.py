"""Unit tests for supervised (counting) HMM parameter estimation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.hmm.supervised import count_transitions, estimate_supervised_parameters


class TestCountTransitions:
    def test_counts_simple_sequences(self):
        labels = [np.array([0, 1, 1]), np.array([1, 0])]
        counts = count_transitions(labels, 2)
        assert np.allclose(counts.start_counts, [1.0, 1.0])
        assert np.allclose(counts.transition_counts, [[0.0, 1.0], [1.0, 1.0]])
        assert np.allclose(counts.state_counts, [2.0, 3.0])

    def test_single_element_sequences_contribute_no_transitions(self):
        counts = count_transitions([np.array([2])], 3)
        assert counts.transition_counts.sum() == 0.0
        assert counts.start_counts[2] == 1.0

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValidationError):
            count_transitions([np.array([0, 5])], 3)

    def test_rejects_non_positive_n_states(self):
        with pytest.raises(ValidationError):
            count_transitions([np.array([0])], 0)


class TestEstimateSupervisedParameters:
    def test_recovers_exact_frequencies(self):
        labels = [np.array([0, 0, 1, 0]), np.array([0, 1, 1, 1])]
        startprob, transmat = estimate_supervised_parameters(labels, 2)
        assert np.allclose(startprob, [1.0, 0.0])
        # transitions: 0->0 x1, 0->1 x2, 1->0 x1, 1->1 x2
        assert np.allclose(transmat, [[1.0 / 3.0, 2.0 / 3.0], [1.0 / 3.0, 2.0 / 3.0]])

    def test_pseudocount_avoids_zero_probabilities(self):
        labels = [np.array([0, 0, 0])]
        _, transmat = estimate_supervised_parameters(labels, 2, pseudocount=0.5)
        assert np.all(transmat > 0)
        assert np.allclose(transmat.sum(axis=1), 1.0)

    def test_unseen_state_row_becomes_uniform(self):
        labels = [np.array([0, 0])]
        _, transmat = estimate_supervised_parameters(labels, 3, pseudocount=0.0)
        assert np.allclose(transmat[1], 1.0 / 3.0)
        assert np.allclose(transmat[2], 1.0 / 3.0)

    def test_rejects_negative_pseudocount(self):
        with pytest.raises(ValidationError):
            estimate_supervised_parameters([np.array([0])], 2, pseudocount=-1.0)

    def test_all_zero_transition_counts_fall_back_to_uniform(self):
        # Single-element sequences contribute no transitions at all, so with
        # pseudocount=0 every row of the count matrix is zero.  The estimate
        # must degrade to uniform rows, not NaN/zero rows.
        labels = [np.array([0]), np.array([1]), np.array([2])]
        startprob, transmat = estimate_supervised_parameters(labels, 3, pseudocount=0.0)
        assert np.all(np.isfinite(transmat))
        assert np.allclose(transmat, 1.0 / 3.0)
        assert np.allclose(transmat.sum(axis=1), 1.0)
        assert np.allclose(startprob.sum(), 1.0)

    def test_zero_pseudocount_mixed_rows_stay_stochastic(self):
        # One state with observed transitions, one without: the observed row
        # keeps its frequencies, the unseen row becomes uniform.
        labels = [np.array([0, 0, 0])]
        startprob, transmat = estimate_supervised_parameters(labels, 2, pseudocount=0.0)
        assert np.allclose(transmat[0], [1.0, 0.0])
        assert np.allclose(transmat[1], 0.5)
        assert np.all(np.isfinite(transmat))
        assert np.allclose(startprob, [1.0, 0.0])

    def test_estimates_recover_generating_chain(self):
        rng = np.random.default_rng(0)
        true_A = np.array([[0.8, 0.2], [0.3, 0.7]])
        labels = []
        for _ in range(200):
            seq = [int(rng.random() < 0.5)]
            for _ in range(20):
                seq.append(int(rng.random() < true_A[seq[-1], 1]))
            labels.append(np.array(seq))
        _, transmat = estimate_supervised_parameters(labels, 2)
        assert np.allclose(transmat, true_A, atol=0.05)
