"""Unit tests for projected gradient ascent over row-stochastic matrices."""

import numpy as np

from repro.optim.projected_gradient import maximize_rowwise_simplex
from repro.utils.maths import safe_log


class TestMaximizeRowwiseSimplex:
    def test_recovers_normalized_counts_for_multinomial_likelihood(self):
        # max sum counts * log A over the simplex has the closed-form solution
        # A_ij = counts_ij / sum_j counts_ij.
        counts = np.array([[30.0, 10.0, 10.0], [5.0, 20.0, 25.0]])
        expected = counts / counts.sum(axis=1, keepdims=True)

        objective = lambda A: float(np.sum(counts * safe_log(A)))
        gradient = lambda A: counts / np.clip(A, 1e-12, None)
        start = np.full((2, 3), 1.0 / 3.0)

        result = maximize_rowwise_simplex(objective, gradient, start, max_iter=300, tol=1e-12)
        assert np.allclose(result.solution, expected, atol=5e-3)

    def test_objective_is_monotone_non_decreasing(self):
        rng = np.random.default_rng(0)
        counts = rng.uniform(1, 20, size=(4, 4))
        objective = lambda A: float(np.sum(counts * safe_log(A)))
        gradient = lambda A: counts / np.clip(A, 1e-12, None)
        start = rng.dirichlet(np.ones(4), size=4)
        result = maximize_rowwise_simplex(objective, gradient, start, max_iter=60)
        diffs = np.diff(result.history)
        assert np.all(diffs >= -1e-9)

    def test_solution_stays_row_stochastic(self):
        counts = np.array([[1.0, 5.0], [8.0, 2.0]])
        objective = lambda A: float(np.sum(counts * safe_log(A)))
        gradient = lambda A: counts / np.clip(A, 1e-12, None)
        result = maximize_rowwise_simplex(objective, gradient, np.full((2, 2), 0.5))
        assert np.allclose(result.solution.sum(axis=1), 1.0)
        assert np.all(result.solution >= 0)

    def test_zero_gradient_stops_immediately(self):
        objective = lambda A: 0.0
        gradient = lambda A: np.zeros_like(A)
        start = np.full((3, 3), 1.0 / 3.0)
        result = maximize_rowwise_simplex(objective, gradient, start)
        assert result.converged
        assert np.allclose(result.solution, start)

    def test_min_value_floor_is_respected(self):
        counts = np.array([[100.0, 0.0]])
        objective = lambda A: float(np.sum(counts * safe_log(A)))
        gradient = lambda A: counts / np.clip(A, 1e-12, None)
        result = maximize_rowwise_simplex(
            objective, gradient, np.array([[0.5, 0.5]]), min_value=1e-4, max_iter=200
        )
        assert result.solution[0, 1] >= 1e-5

    def test_result_reports_iterations_and_objective(self):
        counts = np.array([[3.0, 1.0], [1.0, 3.0]])
        objective = lambda A: float(np.sum(counts * safe_log(A)))
        gradient = lambda A: counts / np.clip(A, 1e-12, None)
        result = maximize_rowwise_simplex(objective, gradient, np.full((2, 2), 0.5), max_iter=40)
        assert result.n_iter >= 1
        assert np.isclose(result.objective, objective(result.solution))
        assert result.history[-1] == result.objective
