"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(7).random(3)
        b = as_generator(7).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))


class TestSpawnGenerators:
    def test_count_and_independence(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [g.random(2) for g in spawn_generators(42, 2)]
        b = [g.random(2) for g in spawn_generators(42, 2)]
        assert np.allclose(a, b)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
