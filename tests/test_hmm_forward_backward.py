"""Unit tests for log-space forward-backward inference.

Correctness is checked against brute-force enumeration of all hidden state
paths on small models, which is exact.
"""

import itertools

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.hmm.forward_backward import (
    compute_posteriors,
    log_backward,
    log_forward,
    sequence_log_likelihood,
)
from repro.utils.maths import safe_log


def brute_force_likelihood(startprob, transmat, obs_probs):
    """Exact P(Y) by summing over every hidden path."""
    T, K = obs_probs.shape
    total = 0.0
    for path in itertools.product(range(K), repeat=T):
        p = startprob[path[0]] * obs_probs[0, path[0]]
        for t in range(1, T):
            p *= transmat[path[t - 1], path[t]] * obs_probs[t, path[t]]
        total += p
    return total


def brute_force_gamma(startprob, transmat, obs_probs):
    """Exact posterior marginals by enumeration."""
    T, K = obs_probs.shape
    gamma = np.zeros((T, K))
    for path in itertools.product(range(K), repeat=T):
        p = startprob[path[0]] * obs_probs[0, path[0]]
        for t in range(1, T):
            p *= transmat[path[t - 1], path[t]] * obs_probs[t, path[t]]
        for t, state in enumerate(path):
            gamma[t, state] += p
    return gamma / gamma.sum(axis=1, keepdims=True)


@pytest.fixture
def small_model():
    startprob = np.array([0.6, 0.4])
    transmat = np.array([[0.7, 0.3], [0.2, 0.8]])
    obs_probs = np.array([[0.9, 0.2], [0.1, 0.7], [0.5, 0.5], [0.8, 0.3]])
    return startprob, transmat, obs_probs


class TestForwardBackward:
    def test_likelihood_matches_brute_force(self, small_model):
        startprob, transmat, obs_probs = small_model
        expected = brute_force_likelihood(startprob, transmat, obs_probs)
        ll = sequence_log_likelihood(startprob, transmat, safe_log(obs_probs))
        assert np.isclose(ll, np.log(expected))

    def test_gamma_matches_brute_force(self, small_model):
        startprob, transmat, obs_probs = small_model
        stats = compute_posteriors(startprob, transmat, safe_log(obs_probs))
        expected = brute_force_gamma(startprob, transmat, obs_probs)
        assert np.allclose(stats.gamma, expected, atol=1e-10)

    def test_gamma_rows_sum_to_one(self, small_model):
        startprob, transmat, obs_probs = small_model
        stats = compute_posteriors(startprob, transmat, safe_log(obs_probs))
        assert np.allclose(stats.gamma.sum(axis=1), 1.0)

    def test_xi_sum_is_consistent_with_gamma(self, small_model):
        # Summing the pairwise posteriors over the second index must give the
        # unary posterior of the earlier position (for t = 1..T-1).
        startprob, transmat, obs_probs = small_model
        stats = compute_posteriors(startprob, transmat, safe_log(obs_probs))
        T = obs_probs.shape[0]
        assert np.isclose(stats.xi_sum.sum(), T - 1)
        # Each pairwise slice marginalizes to gammas; the accumulated sum
        # therefore marginalizes to the summed gammas excluding endpoints.
        assert np.allclose(stats.xi_sum.sum(axis=1), stats.gamma[:-1].sum(axis=0), atol=1e-8)
        assert np.allclose(stats.xi_sum.sum(axis=0), stats.gamma[1:].sum(axis=0), atol=1e-8)

    def test_long_sequence_is_numerically_stable(self):
        rng = np.random.default_rng(0)
        K, T = 5, 500
        startprob = np.full(K, 1.0 / K)
        transmat = rng.dirichlet(np.ones(K), size=K)
        log_obs = safe_log(rng.dirichlet(np.ones(K), size=T))
        stats = compute_posteriors(startprob, transmat, log_obs)
        assert np.isfinite(stats.log_likelihood)
        assert np.all(np.isfinite(stats.gamma))

    def test_single_step_sequence(self):
        startprob = np.array([0.3, 0.7])
        transmat = np.array([[0.5, 0.5], [0.5, 0.5]])
        obs = np.array([[0.4, 0.6]])
        stats = compute_posteriors(startprob, transmat, safe_log(obs))
        expected = startprob * obs[0]
        expected /= expected.sum()
        assert np.allclose(stats.gamma[0], expected)
        assert np.allclose(stats.xi_sum, 0.0)

    def test_forward_backward_message_shapes(self, small_model):
        startprob, transmat, obs_probs = small_model
        log_obs = safe_log(obs_probs)
        alpha = log_forward(safe_log(startprob), safe_log(transmat), log_obs)
        beta = log_backward(safe_log(transmat), log_obs)
        assert alpha.shape == obs_probs.shape
        assert beta.shape == obs_probs.shape
        assert np.allclose(beta[-1], 0.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            log_forward(np.zeros(2), np.zeros((3, 3)), np.zeros((4, 2)))
        with pytest.raises(DimensionMismatchError):
            log_backward(np.zeros((3, 3)), np.zeros((4, 2)))
