"""HTTP front end: endpoints, error mapping, streaming sessions, CLI flags."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.hmm import HMM, CategoricalEmission
from repro.serving import HTTPServingServer, ModelRegistry, StreamingDecoder


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture(scope="module")
def models():
    return {"alpha": _random_hmm(0), "beta": _random_hmm(99)}


@pytest.fixture(scope="module")
def server(tmp_path_factory, models):
    root = tmp_path_factory.mktemp("http") / "registry"
    registry = ModelRegistry(root)
    for name, model in models.items():
        registry.save(name, model)
    registry.save("beta", _random_hmm(100))  # beta has two versions
    with HTTPServingServer(registry, port=0) as server:
        yield server


def _url(server, path):
    return f"http://{server.host}:{server.port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload=None):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload or {}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _error_status(fn):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fn()
    body = json.loads(excinfo.value.read())
    return excinfo.value.code, body


class TestCoreEndpoints:
    def test_health(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["scheduling_policy"] == "fifo"

    def test_list_models(self, server):
        _, payload = _get(server, "/v1/models")
        by_name = {m["name"]: m for m in payload["models"]}
        assert by_name["alpha"]["versions"] == [1]
        assert by_name["beta"]["latest"] == 2

    def test_tag_matches_direct_decode(self, server, models):
        sequence = [0, 3, 1, 2, 4, 1]
        status, payload = _post(
            server, "/v1/models/alpha/tag", {"sequence": sequence}
        )
        assert status == 200
        want = models["alpha"].decode(np.asarray(sequence))
        assert payload["tags"] == [int(s) for s in want]

    def test_score_matches_direct_likelihood(self, server, models):
        sequence = [1, 2, 0, 5]
        _, payload = _post(server, "/v1/models/alpha/score", {"sequence": sequence})
        want = models["alpha"].log_likelihood(np.asarray(sequence))
        assert payload["score"] == pytest.approx(want, abs=1e-9)

    def test_version_pinning(self, server, models):
        sequence = [0, 1, 2, 3]
        _, pinned = _post(
            server, "/v1/models/beta/tag", {"sequence": sequence, "version": 1}
        )
        want = models["beta"].decode(np.asarray(sequence))
        assert pinned["tags"] == [int(s) for s in want]

    def test_stats_counts_served_requests(self, server):
        _post(server, "/v1/models/alpha/tag", {"sequence": [0, 1, 2]})
        _, payload = _get(server, "/stats")
        assert payload["router"]["n_requests"] >= 1
        assert "alpha:v0001" in payload["router"]["per_model"]
        assert payload["scheduling_policy"] == "fifo"

    def test_concurrent_clients(self, server, models):
        rng = np.random.default_rng(5)
        sequences = [[int(x) for x in rng.integers(0, 8, size=6)] for _ in range(12)]
        results: dict[int, list] = {}

        def client(i):
            _, payload = _post(
                server, "/v1/models/alpha/tag", {"sequence": sequences[i]}
            )
            results[i] = payload["tags"]

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, seq in enumerate(sequences):
            assert results[i] == [int(s) for s in models["alpha"].decode(np.asarray(seq))]


class TestErrorMapping:
    def test_unknown_route_is_404(self, server):
        status, body = _error_status(lambda: _get(server, "/nope"))
        assert status == 404 and "error" in body

    def test_unknown_model_is_400(self, server):
        status, body = _error_status(
            lambda: _post(server, "/v1/models/ghost/tag", {"sequence": [0, 1]})
        )
        assert status == 400
        assert "no versions" in body["error"]

    def test_missing_sequence_is_400(self, server):
        status, body = _error_status(
            lambda: _post(server, "/v1/models/alpha/tag", {})
        )
        assert status == 400
        assert "sequence" in body["error"]

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/v1/models/alpha/tag"),
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_stream_is_404(self, server):
        status, _ = _error_status(
            lambda: _post(server, "/v1/streams/deadbeef/push", {"observation": 0})
        )
        assert status == 404


class TestStreaming:
    def test_stream_session_matches_decoder(self, server, models):
        observations = [0, 3, 1, 2, 4, 1, 5, 2]
        _, opened = _post(server, "/v1/streams", {"model": "alpha", "lag": 3})
        stream_id = opened["stream_id"]
        assert opened["version"] == 1
        finalized = []
        for obs in observations:
            _, step = _post(
                server, f"/v1/streams/{stream_id}/push", {"observation": obs}
            )
            assert len(step["filtering"]) == 4
            finalized.extend(step["finalized"])
        _, final = _post(server, f"/v1/streams/{stream_id}/finish")
        decoder = StreamingDecoder(models["alpha"], lag=3)
        decoder.push_many(np.asarray(observations))
        want = decoder.finish()
        assert final["path"] == [int(s) for s in want.path]
        assert final["log_likelihood"] == pytest.approx(want.log_likelihood, abs=1e-12)
        # stream is gone after finish
        status, _ = _error_status(
            lambda: _post(server, f"/v1/streams/{stream_id}/push", {"observation": 0})
        )
        assert status == 404

    def test_stream_stats_exposed(self, server):
        _, opened = _post(server, "/v1/streams", {"model": "alpha"})
        _post(
            server, f"/v1/streams/{opened['stream_id']}/push", {"observation": 1}
        )
        _, stats = _get(server, "/stats")
        assert "alpha:v0001" in stats["streams"]
        assert stats["streams"]["alpha:v0001"]["n_requests"] >= 1
        assert stats["n_open_streams"] >= 1

    def test_open_unknown_model_is_400(self, server):
        status, _ = _error_status(
            lambda: _post(server, "/v1/streams", {"model": "ghost"})
        )
        assert status == 400


class TestLifecycle:
    def test_close_is_idempotent_and_frees_services(self, tmp_path, models):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("alpha", models["alpha"])
        server = HTTPServingServer(registry, port=0).start()
        _, opened = _post(server, "/v1/streams", {"model": "alpha"})
        _post(server, f"/v1/streams/{opened['stream_id']}/push", {"observation": 0})
        server.close()
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(server, "/healthz")

    def test_scheduling_policy_flows_through_config(self, tmp_path, models):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("alpha", models["alpha"])
        config = ServingConfig(scheduling_policy="edf")
        with HTTPServingServer(registry, config=config, port=0) as server:
            _, payload = _get(server, "/healthz")
            assert payload["scheduling_policy"] == "edf"
            _, tagged = _post(
                server,
                "/v1/models/alpha/tag",
                {"sequence": [0, 1, 2], "deadline_ms": 30_000.0},
            )
            assert tagged["tags"] == [
                int(s) for s in models["alpha"].decode(np.asarray([0, 1, 2]))
            ]
