"""The repro-lint framework: rules, pragmas, suppressions, reporters, CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import cli
from repro.analysis.framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    all_rules,
    lint_sources,
    render_json,
    render_text,
)


def lint(text, path="src/repro/mod.py", **kwargs):
    return lint_sources([(path, textwrap.dedent(text))], **kwargs)


def rules_hit(result):
    return sorted({finding.rule for finding in result.findings})


# ------------------------------------------------------------------ #
# Rule registry
# ------------------------------------------------------------------ #
class TestRegistry:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_rule_ids_are_stable_kebab_case(self):
        for rule_id, rule in all_rules().items():
            assert rule_id == rule.id
            assert rule_id == rule_id.lower()
            assert " " not in rule_id
            assert rule.summary


# ------------------------------------------------------------------ #
# guarded-by
# ------------------------------------------------------------------ #
GUARDED = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # repro: guarded-by[_lock]

        def locked_increment(self):
            with self._lock:
                self.count += 1

        def unlocked_increment(self):
            self.count += 1

        def leaking_closure(self):
            with self._lock:
                return lambda: self.count

        def confined_read(self):  # repro: confined[dispatcher]
            return self.count
"""


class TestGuardedBy:
    def test_unlocked_and_closure_access_flagged(self):
        result = lint(GUARDED)
        lines = sorted(
            f.line for f in result.findings if f.rule == "guarded-by"
        )
        text = textwrap.dedent(GUARDED).splitlines()
        assert len(lines) == 2
        assert "self.count += 1" in text[lines[0] - 1]  # unlocked_increment
        assert "lambda" in text[lines[1] - 1]  # closure escapes the lock

    def test_lock_holders_init_and_confined_pass(self):
        result = lint(GUARDED)
        flagged = {f.line for f in result.findings if f.rule == "guarded-by"}
        text = textwrap.dedent(GUARDED).splitlines()
        locked_increment = next(
            i
            for i, line in enumerate(text, 1)
            if "def locked_increment" in line
        )
        # the guarded increment under the lock, the __init__ declaration and
        # the confined read are all clean
        assert locked_increment + 2 not in flagged
        init_decl = next(
            i for i, line in enumerate(text, 1) if "self.count = 0" in line
        )
        assert init_decl not in flagged
        confined = next(
            i for i, line in enumerate(text, 1) if "def confined_read" in line
        )
        assert confined + 1 not in flagged

    def test_nested_function_does_not_inherit_lock(self):
        result = lint(
            """
            class Box:
                def __init__(self):
                    self._lock = object()
                    self.items = []  # repro: guarded-by[_lock]

                def deferred(self):
                    with self._lock:
                        def closure():
                            return self.items
                        return closure
            """
        )
        assert rules_hit(result) == ["guarded-by"]


# ------------------------------------------------------------------ #
# async-blocking
# ------------------------------------------------------------------ #
ASYNC = """
    import time

    class Server:
        async def bad(self, future):
            time.sleep(0.1)
            with self._state_lock:
                pass
            return future.result()

        async def good(self, loop, future):
            def blocking():
                time.sleep(0.1)
                return future.result()
            return await loop.run_in_executor(None, blocking)
"""


class TestAsyncBlocking:
    def test_blocking_primitives_flagged(self):
        result = lint(ASYNC)
        findings = [f for f in result.findings if f.rule == "async-blocking"]
        assert len(findings) == 3  # sleep, lock, result
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "result" in messages
        assert "_state_lock" in messages

    def test_run_in_executor_pattern_passes(self):
        result = lint(ASYNC)
        text = textwrap.dedent(ASYNC).splitlines()
        good_start = next(
            i for i, line in enumerate(text, 1) if "async def good" in line
        )
        assert all(
            f.line < good_start
            for f in result.findings
            if f.rule == "async-blocking"
        )

    def test_open_flagged_in_async_def(self):
        result = lint(
            """
            async def handler(path):
                with open(path) as fh:
                    return fh.name
            """
        )
        assert "async-blocking" in rules_hit(result)


# ------------------------------------------------------------------ #
# hot-path purity
# ------------------------------------------------------------------ #
class TestHotPath:
    def test_undeclared_loop_and_unguarded_log_flagged(self):
        result = lint(
            """
            import numpy as np

            def kernel(x):  # repro: hot-path
                for t in range(x.shape[0]):
                    x[t] = np.log(x[t])
                return x
            """
        )
        assert rules_hit(result) == ["hot-path-loop", "hot-path-unguarded-log"]

    def test_declared_loop_and_guarded_log_pass(self):
        result = lint(
            """
            import numpy as np

            _TINY = 1e-300

            def kernel(x):  # repro: hot-path
                total = x[0]
                for t in range(1, x.shape[0]):  # repro: loop-ok[time recursion]
                    total = total + np.log(np.maximum(x[t], _TINY))
                return total
            """
        )
        assert result.findings == []

    def test_dtype_copy_inside_loop_flagged(self):
        result = lint(
            """
            import numpy as np

            def gather(rows):  # repro: hot-path
                out = []
                for row in rows:  # repro: loop-ok[ragged rows]
                    out.append(np.asarray(row, dtype=np.float64))
                return out
            """
        )
        assert rules_hit(result) == ["hot-path-copy"]

    def test_unmarked_function_is_not_checked(self):
        result = lint(
            """
            import numpy as np

            def slow_path(x):
                for t in range(x.shape[0]):
                    x[t] = np.log(x[t])
                return x
            """
        )
        assert result.findings == []


# ------------------------------------------------------------------ #
# error taxonomy
# ------------------------------------------------------------------ #
TYPED = """
    from repro.exceptions import ServingError

    class LocalError(ServingError):
        pass

    def ok():
        raise LocalError("typed")

    def also_ok():
        raise NotImplementedError

    def bad():
        raise RuntimeError("untyped")
"""


class TestTypedRaise:
    def test_untyped_raise_flagged_in_serving_modules(self):
        result = lint(TYPED, path="src/repro/serving/mod.py")
        findings = [f for f in result.findings if f.rule == "typed-raise"]
        assert len(findings) == 1
        assert "RuntimeError" in findings[0].message

    def test_rule_is_scoped_to_serving(self):
        result = lint(TYPED, path="src/repro/hmm/mod.py")
        assert all(f.rule != "typed-raise" for f in result.findings)


class TestBroadExcept:
    def test_bare_and_base_exception_flagged(self):
        result = lint(
            """
            def swallow_all():
                try:
                    pass
                except:
                    pass

            def swallow_base(log):
                try:
                    pass
                except BaseException as exc:
                    log(exc)
            """
        )
        findings = [f for f in result.findings if f.rule == "broad-except"]
        assert len(findings) == 2

    def test_reraising_handler_passes(self):
        result = lint(
            """
            def supervise(cleanup):
                try:
                    pass
                except BaseException:
                    cleanup()
                    raise
            """
        )
        assert result.findings == []


# ------------------------------------------------------------------ #
# hygiene
# ------------------------------------------------------------------ #
class TestHygiene:
    def test_unused_import_flagged(self):
        result = lint(
            """
            import os
            import sys

            def platform():
                return sys.platform
            """
        )
        findings = [f for f in result.findings if f.rule == "unused-import"]
        assert len(findings) == 1
        assert "os" in findings[0].message

    def test_all_export_counts_as_use(self):
        result = lint(
            """
            from os import path

            __all__ = ["path"]
            """
        )
        assert result.findings == []

    def test_unreachable_code_flagged(self):
        result = lint(
            """
            def f():
                return 1
                print("never")
            """
        )
        assert rules_hit(result) == ["unreachable-code"]


# ------------------------------------------------------------------ #
# suppressions
# ------------------------------------------------------------------ #
class TestSuppressions:
    def test_justified_suppression_silences_the_finding(self):
        result = lint(
            """
            def swallow():
                try:
                    pass
                except:  # repro: ignore[broad-except] -- fixture exercises it
                    pass
            """
        )
        assert result.findings == []

    def test_suppression_without_reason_is_reported(self):
        result = lint(
            """
            def swallow():
                try:
                    pass
                except:  # repro: ignore[broad-except]
                    pass
            """
        )
        assert rules_hit(result) == ["suppression"]
        assert "justification" in result.findings[0].message

    def test_unknown_rule_in_suppression_is_reported(self):
        result = lint("x = 1  # repro: ignore[not-a-rule] -- why\n")
        assert rules_hit(result) == ["suppression"]
        assert "unknown rule" in result.findings[0].message

    def test_unused_suppression_is_reported(self):
        result = lint("x = 1  # repro: ignore[broad-except] -- stale\n")
        assert rules_hit(result) == ["suppression"]
        assert "unused" in result.findings[0].message

    def test_unused_detection_requires_full_rule_set(self):
        result = lint(
            "x = 1  # repro: ignore[broad-except] -- stale\n",
            select=["unused-import"],
        )
        assert result.findings == []

    def test_malformed_pragma_is_reported(self):
        result = lint("x = 1  # repro: frobnicate\n")
        assert rules_hit(result) == ["suppression"]
        assert "malformed" in result.findings[0].message


# ------------------------------------------------------------------ #
# selection, reporters, exit codes
# ------------------------------------------------------------------ #
class TestFrameworkPlumbing:
    def test_select_restricts_rules(self):
        result = lint(
            """
            import os

            def f():
                try:
                    pass
                except:
                    pass
            """,
            select=["unused-import"],
        )
        assert rules_hit(result) == ["unused-import"]

    def test_ignore_drops_rules(self):
        result = lint("import os\n", ignore=["unused-import"])
        assert result.findings == []

    def test_unknown_rule_ids_are_usage_errors(self):
        assert lint("x = 1\n", select=["nope"]).exit_code == EXIT_USAGE
        assert lint("x = 1\n", ignore=["nope"]).exit_code == EXIT_USAGE

    def test_syntax_error_is_a_usage_error(self):
        result = lint("def broken(:\n")
        assert result.errors
        assert result.exit_code == EXIT_USAGE

    def test_exit_codes(self):
        assert lint("x = 1\n").exit_code == EXIT_CLEAN
        assert lint("import os\n").exit_code == EXIT_FINDINGS

    def test_text_report_format(self):
        result = lint("import os\n", path="pkg/mod.py")
        report = render_text(result)
        assert "pkg/mod.py:1:1: [unused-import]" in report
        assert report.endswith("rule(s) active")

    def test_json_report_schema(self):
        result = lint("import os\n", path="pkg/mod.py")
        payload = json.loads(render_json(result))
        assert payload["schema_version"] == 1
        assert payload["exit_code"] == EXIT_FINDINGS
        assert payload["n_files"] == 1
        assert payload["errors"] == []
        assert "suppression" in payload["rules"]
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "unused-import"
        assert finding["path"] == "pkg/mod.py"


# ------------------------------------------------------------------ #
# CLI
# ------------------------------------------------------------------ #
class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli.main([str(tmp_path)]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import os\n")
        assert cli.main([str(tmp_path)]) == EXIT_FINDINGS
        assert "[unused-import]" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import os\n")
        assert cli.main(["--format", "json", str(tmp_path)]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1

    def test_missing_file_is_usage_error(self, tmp_path):
        assert cli.main([str(tmp_path / "absent.py")]) == EXIT_USAGE

    def test_empty_directory_is_usage_error(self, tmp_path):
        assert cli.main([str(tmp_path)]) == EXIT_USAGE

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out
        assert "suppression" in out

    def test_select_filters(self, tmp_path):
        (tmp_path / "bad.py").write_text("import os\n")
        assert (
            cli.main(["--select", "broad-except", str(tmp_path)]) == EXIT_CLEAN
        )
        assert (
            cli.main(["--select", "unused-import", str(tmp_path)])
            == EXIT_FINDINGS
        )
