"""Lock-order regression tests for the serving tier (armed tracker).

The historical hazard: ``MicroBatchScheduler._enqueue`` recorded the
queue-full rejection *while holding* the lifecycle lock (lifecycle ->
stats), while ``ServiceStats.snapshot`` reads the queue depth and health
through callbacks (stats -> lifecycle).  Two threads interleaving those
orders can deadlock.  These tests build real services with the tracker
armed, hammer exactly that interleaving, and assert the acquisition-order
graph stays acyclic.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import lockorder
from repro.core.config import ServingConfig
from repro.exceptions import QueueFullError
from repro.hmm import HMM, CategoricalEmission
from repro.serving import TaggingService


def _random_hmm(seed=0, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(
        rng.dirichlet(np.ones(n_symbols), size=n_states)
    )
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def armed_tracker():
    """Arm a fresh tracker for the test; restore whatever was armed before."""
    previous = lockorder.get_tracker()
    tracker = lockorder.arm()
    try:
        yield tracker
    finally:
        lockorder._tracker = previous


class TestSchedulerLockOrder:
    def test_rejects_racing_snapshots_stay_acyclic(self, armed_tracker):
        """Queue-full rejections (stats writes) vs concurrent snapshots
        (stats -> lifecycle reads) — the exact pair behind the old ABBA."""
        model = _random_hmm()
        config = ServingConfig(
            max_batch_size=4, max_wait_ms=0.5, queue_capacity=2
        )
        stop = threading.Event()
        errors: list[BaseException] = []

        with TaggingService(model, config=config) as service:
            assert isinstance(
                service._lifecycle_lock, lockorder.TrackedLock
            ), "service must be constructed while the tracker is armed"

            def submit_hard():
                rng = np.random.default_rng(1)
                while not stop.is_set():
                    try:
                        service.tag(rng.integers(0, 8, size=6))
                    except QueueFullError:
                        pass
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            def observe():
                while not stop.is_set():
                    try:
                        snapshot = service.stats.snapshot()
                        assert "health" in snapshot
                        assert snapshot["queue_depth"] >= 0
                        _ = service.health
                        _ = service.queue_depth
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=submit_hard) for _ in range(3)
            ] + [threading.Thread(target=observe) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=0.05)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive(), "worker wedged: likely deadlock"

        assert errors == []
        armed_tracker.assert_clean()
        snapshot = service.stats.snapshot()
        assert snapshot["n_requests"] >= 1

    def test_rejection_is_still_counted(self, armed_tracker):
        """Moving record_rejected() out of the lifecycle lock must not lose
        the count."""
        model = _random_hmm(seed=2)
        config = ServingConfig(
            max_batch_size=1, max_wait_ms=50.0, queue_capacity=1
        )
        with TaggingService(model, config=config) as service:
            rng = np.random.default_rng(3)
            rejected = 0
            for _ in range(50):
                try:
                    service.submit_tag(rng.integers(0, 8, size=4))
                except QueueFullError:
                    rejected += 1
            assert rejected >= 1
            assert service.stats.snapshot()["n_rejected"] == rejected
        armed_tracker.assert_clean()

    def test_inverted_order_would_be_caught(self, armed_tracker):
        """Negative control: the tracker does flag the pre-fix interleaving
        (stats taken under lifecycle vs lifecycle taken under stats)."""
        stats = lockorder.make_lock("stats")
        lifecycle = lockorder.make_lock("scheduler.lifecycle")
        with stats:
            with lifecycle:  # snapshot -> _stats_extra: the kept order
                pass
        with lifecycle:
            with stats:  # the removed _enqueue pattern
                pass
        assert any(v.kind == "cycle" for v in armed_tracker.violations)
        with pytest.raises(lockorder.LockOrderError):
            armed_tracker.assert_clean()
