"""BatchedStreamingSession: per-stream bit-identical equivalence + API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.hmm import HMM, CategoricalEmission
from repro.hmm.backends import BatchedStreamingSession, StreamingSession
from repro.utils.maths import safe_log


def _random_hmm(seed, n_states=5, n_symbols=9):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


def _log_params(model):
    return safe_log(model.startprob), safe_log(model.transmat)


def _assert_steps_identical(batched_step, reference_step, context=""):
    assert batched_step.t == reference_step.t, context
    # Bit-identical, not merely close: the batched tick must apply the same
    # elementary operations per stream as the single-stream session.
    assert np.array_equal(batched_step.filtering, reference_step.filtering), context
    assert batched_step.log_likelihood == reference_step.log_likelihood, context
    assert batched_step.finalized == reference_step.finalized, context


class TestBitIdenticalEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_mixed_lags_and_lengths(self, seed):
        """B streams at mixed lags/lengths: every step equals StreamingSession."""
        model = _random_hmm(seed)
        log_pi, log_A = _log_params(model)
        rng = np.random.default_rng(seed)
        lags = [None, 1, 2, 3, 8, 40]
        lengths = [int(rng.integers(1, 35)) for _ in lags]
        observations = [
            np.asarray(model.sample(T, seed=seed + i)[1])
            for i, T in enumerate(lengths)
        ]
        rows = [model.emissions.log_likelihoods(obs) for obs in observations]

        references = [StreamingSession(log_pi, log_A, lag=lag) for lag in lags]
        batched = BatchedStreamingSession(log_pi, log_A, lags=lags)
        for t in range(max(lengths)):
            active = [i for i in range(len(lags)) if t < lengths[i]]
            steps = batched.step_many(
                np.stack([rows[i][t] for i in active]), active
            )
            for i, step in zip(active, steps):
                _assert_steps_identical(
                    step, references[i].step(rows[i][t]), context=f"stream {i} t {t}"
                )
        for i in range(len(lags)):
            assert batched.finish(i) == references[i].finish()

    def test_single_stream_step_matches_session(self):
        model = _random_hmm(3)
        log_pi, log_A = _log_params(model)
        rows = model.emissions.log_likelihoods(np.asarray(model.sample(15, seed=3)[1]))
        reference = StreamingSession(log_pi, log_A, lag=4)
        batched = BatchedStreamingSession(log_pi, log_A, lags=[4])
        for row in rows:
            _assert_steps_identical(batched.step(0, row), reference.step(row))
        assert batched.finish(0) == reference.finish()

    def test_stream_added_mid_flight(self):
        """A stream opened after others started behaves like a fresh session."""
        model = _random_hmm(5)
        log_pi, log_A = _log_params(model)
        rows = model.emissions.log_likelihoods(np.asarray(model.sample(20, seed=5)[1]))
        batched = BatchedStreamingSession(log_pi, log_A, lags=[2])
        for t in range(6):
            batched.step_many(rows[t][None], [0])
        late = batched.add_stream(lag=3)
        reference = StreamingSession(log_pi, log_A, lag=3)
        for t in range(6, 20):
            steps = batched.step_many(np.stack([rows[t], rows[t]]), [0, late])
            _assert_steps_identical(steps[1], reference.step(rows[t]))
        assert batched.finish(late) == reference.finish()

    def test_finished_slot_is_reused(self):
        model = _random_hmm(7)
        log_pi, log_A = _log_params(model)
        row = model.emissions.log_likelihoods(np.array([0]))[0]
        batched = BatchedStreamingSession(log_pi, log_A, lags=[None, None])
        batched.step(0, row)
        batched.finish(0)
        assert batched.n_streams == 1
        recycled = batched.add_stream(lag=None)
        assert recycled == 0
        # the recycled slot starts from scratch
        reference = StreamingSession(log_pi, log_A, lag=None)
        _assert_steps_identical(batched.step(recycled, row), reference.step(row))


class TestApi:
    def test_active_streams_and_counts(self):
        model = _random_hmm(0)
        batched = model.stream_batch(lags=[1, 2, 3])
        assert batched.n_streams == 3
        assert batched.active_streams() == [0, 1, 2]
        row = model.emissions.log_likelihoods(np.array([0]))[0]
        batched.step_many(np.stack([row] * 3))  # default: all active streams
        batched.finish(1)
        assert batched.active_streams() == [0, 2]

    def test_step_finished_stream_raises(self):
        model = _random_hmm(0)
        batched = model.stream_batch(lags=[None])
        row = model.emissions.log_likelihoods(np.array([0]))[0]
        batched.step(0, row)
        batched.finish(0)
        with pytest.raises(ValidationError, match="finished"):
            batched.step(0, row)

    def test_unknown_stream_raises(self):
        model = _random_hmm(0)
        batched = model.stream_batch(lags=[None])
        row = model.emissions.log_likelihoods(np.array([0]))[0]
        with pytest.raises(ValidationError, match="unknown stream"):
            batched.step(5, row)

    def test_duplicate_stream_ids_rejected(self):
        model = _random_hmm(0)
        batched = model.stream_batch(lags=[None, None])
        row = model.emissions.log_likelihoods(np.array([0]))[0]
        with pytest.raises(ValidationError, match="duplicate"):
            batched.step_many(np.stack([row, row]), [0, 0])

    def test_row_shape_validated(self):
        model = _random_hmm(0)
        batched = model.stream_batch(lags=[None])
        with pytest.raises(DimensionMismatchError):
            batched.step_many(np.zeros((1, 3)), [0])
        with pytest.raises(ValidationError, match="rows"):
            batched.step_many(
                np.zeros((2, model.n_states)), [0]
            )

    def test_invalid_lag_rejected(self):
        model = _random_hmm(0)
        with pytest.raises(ValidationError, match="lag"):
            model.stream_batch(lags=[0])

    def test_engine_entry_point_uses_param_cache(self):
        model = _random_hmm(0)
        engine = model.inference_engine
        session = engine.start_stream_batch(model.startprob, model.transmat, lags=[2])
        assert isinstance(session, BatchedStreamingSession)
        assert session.n_states == model.n_states

    def test_empty_tick_is_a_no_op(self):
        model = _random_hmm(0)
        batched = model.stream_batch()
        assert batched.step_many(np.zeros((0, model.n_states)), []) == []
