"""Tests for the OCR experiment harnesses (Fig. 10-12)."""

import numpy as np
import pytest

from repro.baselines import BernoulliNaiveBayes
from repro.datasets.ocr import LETTERS, N_LETTERS, N_PIXELS
from repro.experiments.ocr import (
    cross_validated_accuracy,
    letter_diversity_profiles,
    run_ocr_alpha_sweep,
    run_ocr_classifier_comparison,
)


class TestCrossValidatedAccuracy:
    def test_returns_mean_std_and_folds(self, tiny_ocr_dataset):
        mean, std, folds = cross_validated_accuracy(
            tiny_ocr_dataset,
            lambda: BernoulliNaiveBayes(N_LETTERS, N_PIXELS),
            n_folds=4,
            seed=0,
        )
        assert folds.shape == (4,)
        assert np.isclose(mean, folds.mean())
        assert np.isclose(std, folds.std())
        assert 0.0 <= mean <= 1.0


class TestRunOcrAlphaSweep:
    def test_sweep_structure(self, tiny_ocr_dataset):
        sweep = run_ocr_alpha_sweep(
            dataset=tiny_ocr_dataset, alphas=(0.0, 10.0), n_folds=3, seed=0
        )
        assert sweep.alphas.shape == (2,)
        assert sweep.accuracies.shape == (2,)
        assert np.all((sweep.accuracies >= 0) & (sweep.accuracies <= 1))
        assert sweep.alpha_anchor == 1e5

    def test_baseline_and_best_are_consistent(self, tiny_ocr_dataset):
        sweep = run_ocr_alpha_sweep(
            dataset=tiny_ocr_dataset, alphas=(0.0, 10.0), n_folds=3, seed=0
        )
        assert sweep.baseline_accuracy == sweep.accuracies[0]
        assert sweep.best_accuracy >= sweep.baseline_accuracy - 1e-12


class TestRunOcrClassifierComparison:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_ocr_dataset):
        return run_ocr_classifier_comparison(
            dataset=tiny_ocr_dataset, alpha=10.0, n_folds=3, seed=0
        )

    def test_all_four_classifiers_present(self, comparison):
        assert comparison.classifier_names == ["Naive Bayes", "HMM", "Optimized HMM", "dHMM"]
        assert comparison.mean_accuracies.shape == (4,)
        assert comparison.std_accuracies.shape == (4,)

    def test_naive_bayes_is_not_the_best(self, comparison):
        # The chain-structured models must beat (or at least match) the
        # independent classifier, as in Fig. 11.
        nb = comparison.mean_accuracies[0]
        assert comparison.mean_accuracies[1:].max() >= nb - 0.02

    def test_dhmm_at_least_matches_plain_hmm(self, comparison):
        hmm_acc = comparison.mean_accuracies[1]
        dhmm_acc = comparison.mean_accuracies[3]
        assert dhmm_acc >= hmm_acc - 0.02

    def test_as_rows_format(self, comparison):
        rows = comparison.as_rows()
        assert len(rows) == 4
        assert all(len(row) == 3 for row in rows)


class TestLetterDiversityProfiles:
    def test_profiles_for_x_and_y(self, tiny_ocr_dataset):
        profiles = letter_diversity_profiles(
            dataset=tiny_ocr_dataset, letters=("x", "y"), alpha=10.0, seed=0
        )
        assert set(profiles) == {"x", "y"}
        for letter_profiles in profiles.values():
            assert letter_profiles["hmm"].shape == (len(LETTERS) - 1,)
            assert letter_profiles["dhmm"].shape == (len(LETTERS) - 1,)
            assert np.all(letter_profiles["dhmm"] >= 0)
