"""Router: multi-model routing, LRU loading, per-model coalescing."""

import time

import numpy as np
import pytest

from repro.core.config import ServingConfig
from repro.exceptions import (
    DeadlineExceededError,
    QueueFullError,
    ServiceShuttingDownError,
    ValidationError,
)
from repro.hmm import HMM, CategoricalEmission
from repro.serving import ModelRegistry, Router


def _random_hmm(seed, n_states=4, n_symbols=8):
    rng = np.random.default_rng(seed)
    emissions = CategoricalEmission(rng.dirichlet(np.ones(n_symbols), size=n_states))
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        emissions,
    )


@pytest.fixture
def models():
    return {"alpha": _random_hmm(0), "beta": _random_hmm(99)}


@pytest.fixture
def registry(tmp_path, models):
    registry = ModelRegistry(tmp_path / "registry")
    for name, model in models.items():
        registry.save(name, model)
    return registry


@pytest.fixture
def sequences(models):
    _, seqs = models["alpha"].sample_dataset(30, 10, seed=1)
    return seqs


class TestRouting:
    def test_serves_two_models_through_one_queue(self, registry, models, sequences):
        with Router(registry) as router:
            alpha_futures = [router.submit_tag("alpha", s) for s in sequences]
            beta_futures = [router.submit_tag("beta", s) for s in sequences]
            alpha_paths = [f.result(timeout=10) for f in alpha_futures]
            beta_paths = [f.result(timeout=10) for f in beta_futures]
        for got, want in zip(alpha_paths, models["alpha"].predict(sequences)):
            assert np.array_equal(got, want)
        for got, want in zip(beta_paths, models["beta"].predict(sequences)):
            assert np.array_equal(got, want)
        # the two models genuinely disagree somewhere, so the routing is
        # observable, not vacuous
        assert any(
            not np.array_equal(a, b) for a, b in zip(alpha_paths, beta_paths)
        )

    def test_interleaved_burst_coalesces_per_model(self, registry, models, sequences):
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        with Router(registry, config=config) as router:
            futures = []
            for i, seq in enumerate(sequences):
                name = "alpha" if i % 2 == 0 else "beta"
                futures.append((name, seq, router.submit_tag(name, seq)))
            for name, seq, future in futures:
                assert np.array_equal(
                    future.result(timeout=10), models[name].decode(seq)
                )
            stats = router.stats.snapshot()
        # interleaved requests still form multi-request per-model batches
        assert stats["mean_batch_size"] > 2.0
        assert stats["per_model"]["alpha:v0001"] == 15
        assert stats["per_model"]["beta:v0001"] == 15

    def test_scoring_routes_like_tagging(self, registry, models, sequences):
        with Router(registry) as router:
            scores = router.score_many("beta", sequences[:5])
        expected = [models["beta"].log_likelihood(s) for s in sequences[:5]]
        np.testing.assert_allclose(scores, expected, atol=1e-9)

    def test_explicit_version_routing(self, tmp_path, sequences):
        v1_model, v2_model = _random_hmm(1), _random_hmm(2)
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("m", v1_model)
        registry.save("m", v2_model)
        with Router(registry) as router:
            pinned = router.tag("m", sequences[0], version=1)
            latest = router.tag("m", sequences[0])
        assert np.array_equal(pinned, v1_model.decode(sequences[0]))
        assert np.array_equal(latest, v2_model.decode(sequences[0]))

    def test_unknown_model_fails_at_submit(self, registry, sequences):
        with Router(registry) as router:
            with pytest.raises(ValidationError, match="no versions"):
                router.submit_tag("nope", sequences[0])
            with pytest.raises(ValidationError, match="version"):
                router.submit_tag("alpha", sequences[0], version=7)

    def test_accepts_registry_root_path(self, registry, models, sequences):
        with Router(registry.root) as router:
            path = router.tag("alpha", sequences[0])
        assert np.array_equal(path, models["alpha"].decode(sequences[0]))


class TestLruCache:
    def test_lazy_load_and_eviction(self, registry, sequences):
        config = ServingConfig(max_loaded_models=1)
        with Router(registry, config=config) as router:
            assert router.loaded_models() == []
            router.tag("alpha", sequences[0])
            assert router.loaded_models() == [("alpha", 1)]
            router.tag("beta", sequences[0])
            assert router.loaded_models() == [("beta", 1)]
            router.tag("alpha", sequences[0])  # reload after eviction
            stats = router.stats.snapshot()
        assert stats["n_model_loads"] == 3
        assert stats["n_model_evictions"] == 2

    def test_hot_model_is_not_reloaded(self, registry, sequences):
        config = ServingConfig(max_loaded_models=2)
        with Router(registry, config=config) as router:
            for seq in sequences[:6]:
                router.tag("alpha", seq)
                router.tag("beta", seq)
            stats = router.stats.snapshot()
        assert stats["n_model_loads"] == 2
        assert stats["n_model_evictions"] == 0

    def test_lru_order_follows_usage(self, registry, sequences):
        config = ServingConfig(max_loaded_models=2)
        with Router(registry, config=config) as router:
            router.tag("alpha", sequences[0])
            router.tag("beta", sequences[0])
            router.tag("alpha", sequences[1])  # alpha becomes most recent
            assert router.loaded_models() == [("beta", 1), ("alpha", 1)]


class TestLifecycle:
    def test_close_flushes_queued_requests(self, registry, models, sequences):
        router = Router(registry)
        futures = [router.submit_tag("alpha", s) for s in sequences]
        assert router.close() is True
        for future, want in zip(futures, models["alpha"].predict(sequences)):
            assert np.array_equal(future.result(timeout=1), want)

    def test_submit_after_close_raises(self, registry, sequences):
        router = Router(registry)
        router.close()
        with pytest.raises(ServiceShuttingDownError, match="closed"):
            router.submit_tag("alpha", sequences[0])

    def test_queue_capacity_applies(self, registry, sequences):
        # capacity 1 with an idle dispatcher still admits requests one at a
        # time; a burst submitted faster than the dispatcher drains must
        # eventually fast-fail.  Deterministic variant lives in
        # test_serving_service.py; here we only check the error type wiring.
        config = ServingConfig(queue_capacity=1, max_wait_ms=0.0)
        with Router(registry, config=config) as router:
            saw_rejection = False
            futures = []
            for _ in range(200):
                try:
                    futures.append(router.submit_tag("alpha", sequences[0]))
                except QueueFullError:
                    saw_rejection = True
            for future in futures:
                future.result(timeout=10)
        assert saw_rejection

    def test_deadline_rechecked_per_model_group(self, registry, models, sequences):
        """A request expiring while an *earlier* group computes (here: while
        its cold model loads slowly) must still be shed before the engine."""
        real_load = registry.load
        load_calls = []

        def slow_load(name, version=None):
            load_calls.append(name)
            time.sleep(0.15)  # a cold model whose artifact load is slow
            return real_load(name, version)

        registry.load = slow_load
        # Large max_wait so both requests land in one drained batch; "alpha"
        # is submitted first, so its group (and slow load) runs first.
        config = ServingConfig(max_wait_ms=500.0)
        with Router(registry, config=config) as router:
            served = router.submit_tag("alpha", sequences[0])
            doomed = router.submit_tag("beta", sequences[1], deadline_ms=30.0)
            assert np.array_equal(
                served.result(timeout=10), models["alpha"].decode(sequences[0])
            )
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10)
            stats = router.stats.snapshot()
        assert stats["n_expired"] == 1
        # beta's requests never reached its engine (nothing recorded for it)
        assert "beta:v0001" not in stats["per_model"]

    def test_corrupt_artifact_fails_only_its_group(self, tmp_path, models, sequences):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("doomed", models["alpha"])
        registry.save("stable", models["beta"])
        # The manifest survives (submit-time validation passes) but the
        # arrays payload is gone, so the lazy load in the dispatcher fails.
        (registry.root / "doomed" / "v0001" / "arrays-0000.npy").unlink()
        with Router(registry) as router:
            doomed = router.submit_tag("doomed", sequences[0])
            stable = router.submit_tag("stable", sequences[1])
            with pytest.raises(Exception):
                doomed.result(timeout=10)
            assert np.array_equal(
                stable.result(timeout=10), models["beta"].decode(sequences[1])
            )
