"""Setuptools shim so ``pip install -e .`` works without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists to
support legacy editable installs on minimal environments.
"""

from setuptools import setup

setup()
