"""Benchmark: genome-scale chunked decode vs serial single-bucket decode.

One T=1M-token sequence (``BENCH_LONGSEQ_T`` overrides the length) decoded
two ways through the same fused log-domain Viterbi kernel:

* **serial** — the whole sequence as a single bucket row ``(1, T, K)``:
  one Python-level iteration per timestep;
* **chunked** — ``viterbi_long``: overlapping windows decoded
  ``group_size`` at a time as one bucket (B-way data parallelism), paths
  stitched at agreement points inside the overlaps.

The chunked path must be at least ``BENCH_MIN_LONG_DECODE_SPEEDUP`` times
faster, stitch exactly (or >= 99.9% token agreement when a fallback stitch
occurs), and hold a *T-independent* working set: the decode-phase
tracemalloc peak is gated against the windows-resident budget
(``group_size x window x K`` floats) plus the O(T) result path itself,
and the streamed log-likelihood is gated against a flat absolute ceiling.
Results are merged into ``BENCH_inference.json``.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.hmm import ScaledBatchedBackend, streaming_log_likelihood

#: Sequence length for the long-decode gate.  The default reproduces the
#: paper-scale T=1M workload; override to shrink smoke runs.
LONGSEQ_T = int(os.environ.get("BENCH_LONGSEQ_T", "1000000"))

#: Acceptance floor for chunked-vs-serial decode wall time.  The win comes
#: from batching (window-parallel numpy ops amortize the per-timestep
#: Python overhead ~group_size ways), so it holds even single-core
#: (~12-15x observed); the default still relaxes below 4 cores to keep
#: starved CI containers from failing a numerically correct change.
MIN_LONG_DECODE_SPEEDUP = float(
    os.environ.get(
        "BENCH_MIN_LONG_DECODE_SPEEDUP",
        "2.0" if (os.cpu_count() or 1) >= 4 else "1.3",
    )
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_inference.json"

_WINDOW = 4096
_OVERLAP = 256
_GROUP = 64
_K = 8


def _merge_results(update: dict) -> None:
    """Merge this benchmark's keys into the shared BENCH_inference.json."""
    existing: dict = {}
    if _RESULT_PATH.is_file():
        try:
            existing = json.loads(_RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(update)
    _RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _build_workload():
    """A sticky K=8 model plus a (T, K) emission log-likelihood table.

    The table is drawn directly at log-likelihood magnitudes rather than
    sampled token-by-token through ``HMM.sample`` (per-step Python would
    dwarf the decode itself at T=1M); the decode kernels only ever see
    emission scores, so the timing is identical.
    """
    rng = np.random.default_rng(7)
    pi = rng.dirichlet(np.ones(_K))
    transmat = 0.8 * np.eye(_K) + 0.2 * rng.dirichlet(np.ones(_K), size=_K)
    transmat /= transmat.sum(axis=1, keepdims=True)
    table = rng.normal(0.0, 2.0, size=(LONGSEQ_T, _K))
    return pi, transmat, table


def test_long_sequence_decode(benchmark):
    pi, transmat, table = _build_workload()
    backend = ScaledBatchedBackend(bucket_size=_GROUP)

    # Warm numpy/the kernel on a small prefix so first-call overheads do
    # not pollute the single-shot serial timing below.
    backend.viterbi_long(pi, transmat, table[:20_000], window=_WINDOW, overlap=_OVERLAP)
    backend.viterbi(pi, transmat, [table[:20_000]])

    start = time.perf_counter()
    serial_path, serial_lj = backend.viterbi(pi, transmat, [table])[0]
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    res = backend.viterbi_long(
        pi, transmat, table, window=_WINDOW, overlap=_OVERLAP, group_size=_GROUP
    )
    chunked_seconds = time.perf_counter() - start
    speedup = serial_seconds / chunked_seconds

    # Correctness gate: exact whenever every join found an agreement run,
    # >= 99.9% token agreement otherwise (the ISSUE's acceptance bar).
    agreement = float((res.path == serial_path).mean())
    if res.exact_stitch:
        assert np.array_equal(res.path, serial_path)
        # block-wise re-scoring reassociates a ~1e6-term sum; gate on
        # relative error (observed ~8e-12 at T=1M)
        assert res.log_joint == pytest.approx(serial_lj, rel=1e-9)
    assert agreement >= 0.999
    assert res.n_agreement_stitches + res.n_fallback_stitches == res.n_windows - 1

    # Memory gate: decode-phase peak is bounded by the windows-resident
    # budget plus the O(T) result path — never by a (T, K) working tensor.
    assert res.max_windows_resident <= _GROUP
    windows_budget = _GROUP * _WINDOW * _K * 8  # the (B, W, K) float64 bucket
    path_bytes = 8 * LONGSEQ_T
    tracemalloc.start()
    backend.viterbi_long(
        pi, transmat, table, window=_WINDOW, overlap=_OVERLAP, group_size=_GROUP
    )
    _, decode_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert decode_peak <= 6 * windows_budget + 3 * path_bytes

    # Streamed log-likelihood holds only block-sized buffers: a flat
    # absolute ceiling regardless of T.  The forward recursion is
    # inherently one Python step per timestep, so the gate runs on a
    # 200k-token slice — the ceiling is length-independent either way.
    ll_t = min(LONGSEQ_T, 200_000)
    tracemalloc.start()
    start = time.perf_counter()
    stream_ll = streaming_log_likelihood(pi, transmat, table[:ll_t])
    ll_seconds = time.perf_counter() - start
    _, ll_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert ll_peak <= 64 * 1024 * 1024

    results = {
        "long_sequence": {
            "workload": {
                "T": LONGSEQ_T,
                "n_states": _K,
                "window": _WINDOW,
                "overlap": _OVERLAP,
                "group_size": _GROUP,
            },
            "decode_seconds": {"serial": serial_seconds, "chunked": chunked_seconds},
            "decode_speedup": speedup,
            "n_windows": res.n_windows,
            "n_agreement_stitches": res.n_agreement_stitches,
            "n_fallback_stitches": res.n_fallback_stitches,
            "exact_stitch": res.exact_stitch,
            "token_agreement": agreement,
            "max_windows_resident": res.max_windows_resident,
            "decode_peak_bytes": decode_peak,
            "windows_budget_bytes": windows_budget,
            "streaming_ll_T": ll_t,
            "streaming_ll_seconds": ll_seconds,
            "streaming_ll_peak_bytes": ll_peak,
            "streaming_ll": stream_ll,
        }
    }
    _merge_results(results)

    print_header("Long-sequence decode - chunked windows vs serial single bucket")
    print(f"T={LONGSEQ_T:,}  K={_K}  window={_WINDOW} overlap={_OVERLAP} "
          f"group={_GROUP}  ({res.n_windows} windows)")
    print(f"serial : {serial_seconds:7.2f} s")
    print(f"chunked: {chunked_seconds:7.2f} s | {speedup:5.1f}x | "
          f"agreement stitches {res.n_agreement_stitches}/{res.n_windows - 1} | "
          f"token agreement {agreement:.6f}")
    print(f"memory : decode peak {decode_peak / 1e6:6.1f} MB "
          f"(windows budget {windows_budget / 1e6:.1f} MB + path "
          f"{path_bytes / 1e6:.1f} MB) | streamed ll peak {ll_peak / 1e6:.1f} MB")
    print(f"results merged into {_RESULT_PATH.name}")

    benchmark.extra_info.update(
        long_decode_speedup=speedup, token_agreement=agreement
    )
    benchmark.pedantic(
        lambda: backend.viterbi_long(
            pi,
            transmat,
            table[:100_000],
            window=_WINDOW,
            overlap=_OVERLAP,
            group_size=_GROUP,
        ),
        rounds=1,
        iterations=1,
    )

    assert speedup >= MIN_LONG_DECODE_SPEEDUP
