"""Benchmarks regenerating the toy-data artifacts: Fig. 2, Table 1, Fig. 3-5.

Paper reference values (their simulated data / their EM implementation):
  Table 1 : HMM 1-to-1 accuracy 0.4117, dHMM 0.4728
  Fig. 3  : ground-truth row diversity 0.531; dHMM curve above HMM curve
  Fig. 5  : dHMM identifies more states than HMM as sigma grows
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.datasets.toy import TOY_MEANS
from repro.experiments.reporting import format_table
from repro.experiments.toy import run_sigma_sweep, run_toy_comparison


def test_fig2_parameter_recovery(benchmark):
    """Fig. 2: learned (pi, A, B) vs ground truth after alignment."""

    def run():
        return run_toy_comparison(
            alpha=1.0, n_sequences=200, sequence_length=6, sigma=0.025, max_em_iter=25, seed=0
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.experiments.alignment import align_model_to_reference

    aligned = align_model_to_reference(result.dhmm.model_, result.dataset.model, by="emissions")
    print_header("Fig. 2 - learned parameters (dHMM, aligned to ground truth)")
    rows = [
        (f"state {i + 1}", float(TOY_MEANS[i]), float(aligned.emissions.means[i]),
         float(np.sqrt(aligned.emissions.variances[i])))
        for i in range(5)
    ]
    print(format_table(["state", "true mean", "learned mean", "learned sigma"], rows))

    # Shape check: the learned means recover the 1..5 grid up to small error.
    assert np.all(np.abs(np.sort(aligned.emissions.means) - TOY_MEANS) < 0.5)
    benchmark.extra_info["dhmm_accuracy"] = result.dhmm_accuracy
    benchmark.extra_info["hmm_accuracy"] = result.hmm_accuracy


def test_table1_toy_accuracy(benchmark):
    """Table 1: state histograms and 1-to-1 accuracies of HMM vs dHMM."""

    def run():
        return run_toy_comparison(
            alpha=1.0, n_sequences=300, sequence_length=6, sigma=1.5, max_em_iter=25, seed=2
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 1 - state frequencies and labeling accuracies")
    print(format_table(
        ["model", "1-to-1 accuracy", "row diversity", "#states >= 50"],
        result.summary_rows(),
    ))
    print("state histograms (true / HMM / dHMM):")
    print("  true :", result.true_histogram.astype(int).tolist())
    print("  HMM  :", result.hmm_histogram.astype(int).tolist())
    print("  dHMM :", result.dhmm_histogram.astype(int).tolist())
    print("paper: HMM 0.4117, dHMM 0.4728 (their EM/initialization)")

    # Shape checks: the dHMM transition rows are more diverse and its
    # accuracy is in the same ballpark or better than the HMM's.
    assert result.dhmm_diversity >= result.hmm_diversity - 0.05
    assert result.dhmm_accuracy >= result.hmm_accuracy - 0.08
    benchmark.extra_info["hmm_accuracy"] = result.hmm_accuracy
    benchmark.extra_info["dhmm_accuracy"] = result.dhmm_accuracy


def _run_sweep():
    sigmas = np.array([0.025, 0.525, 1.025, 1.525, 2.025, 2.825])
    return run_sigma_sweep(
        sigmas=sigmas,
        alpha=1.0,
        n_runs=2,
        n_sequences=200,
        sequence_length=6,
        max_em_iter=15,
        seed=0,
    )


def test_fig3_diversity_vs_sigma(benchmark):
    """Fig. 3: average Bhattacharyya row diversity as the emissions flatten."""
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print_header("Fig. 3 - transition-row diversity vs emission sigma")
    rows = list(zip(sweep.sigmas, sweep.hmm_diversity, sweep.dhmm_diversity))
    print(format_table(["sigma", "HMM diversity", "dHMM diversity"], rows))
    print(f"ground-truth diversity: {sweep.true_diversity:.3f} (paper: 0.531)")

    # Shape check: averaged over the sweep the dHMM rows are more diverse,
    # and the gap is clearest in the flat-emission (large sigma) half.
    assert sweep.dhmm_diversity.mean() >= sweep.hmm_diversity.mean()
    flat_half = sweep.sigmas >= 1.5
    assert np.all(sweep.dhmm_diversity[flat_half] >= sweep.hmm_diversity[flat_half] - 0.02)


def test_fig4_state_histogram(benchmark):
    """Fig. 4: inferred hidden-state histogram at a flat sigma (2.825)."""

    def run():
        return run_toy_comparison(
            alpha=1.0, n_sequences=300, sequence_length=6, sigma=2.825, max_em_iter=20, seed=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 4 - hidden state histograms at sigma = 2.825 (threshold 50)")
    rows = [
        ("ground-truth", *result.true_histogram.astype(int).tolist()),
        ("HMM", *result.hmm_histogram.astype(int).tolist()),
        ("dHMM", *result.dhmm_histogram.astype(int).tolist()),
    ]
    print(format_table(["model", "s1", "s2", "s3", "s4", "s5"], rows))

    from repro.metrics.histograms import histogram_distance

    hmm_dist = histogram_distance(result.hmm_histogram, result.true_histogram)
    dhmm_dist = histogram_distance(result.dhmm_histogram, result.true_histogram)
    print(f"total-variation distance to truth: HMM {hmm_dist:.3f}, dHMM {dhmm_dist:.3f}")
    # Shape check: the dHMM histogram is at least as close to the truth.
    assert dhmm_dist <= hmm_dist + 0.05


def test_fig5_num_states_vs_sigma(benchmark):
    """Fig. 5: number of states with frequency >= 50 as sigma grows."""
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print_header("Fig. 5 - number of identified states vs emission sigma")
    rows = list(zip(sweep.sigmas, sweep.hmm_n_states, sweep.dhmm_n_states))
    print(format_table(["sigma", "HMM #states", "dHMM #states"], rows))

    # Shape check: the dHMM never identifies fewer states on average.
    assert sweep.dhmm_n_states.mean() >= sweep.hmm_n_states.mean() - 0.5
