"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures on a
moderately sized synthetic workload (the full-size settings are exposed by
the example scripts; the benchmark sizes are chosen so the whole suite runs
in a few minutes on a laptop while preserving the qualitative shapes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ocr import generate_ocr_dataset
from repro.datasets.pos import generate_wsj_like_corpus

#: Benchmark-scale workload sizes (kept well below the paper's full sizes so
#: the whole suite runs in minutes; the example scripts use the full sizes).
POS_BENCH_SETTINGS = dict(n_sentences=400, vocabulary_size=800, mean_length=12, max_length=60)
OCR_BENCH_SETTINGS = dict(n_words=800, pixel_noise=0.10)


@pytest.fixture(scope="session")
def pos_corpus():
    """WSJ-like corpus at benchmark scale (~5K tokens, 800-word vocabulary)."""
    return generate_wsj_like_corpus(seed=0, **POS_BENCH_SETTINGS)


@pytest.fixture(scope="session")
def ocr_dataset():
    """Synthetic OCR dataset at benchmark scale (800 words)."""
    return generate_ocr_dataset(seed=0, **OCR_BENCH_SETTINGS)


def print_header(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
