"""Benchmarks regenerating the PoS-tagging artifacts: Table 2, Fig. 7-9.

Paper reference values (Penn Treebank WSJ, 15 merged tags):
  Fig. 7 : HMM (alpha=0) 0.4475, best dHMM 0.4688 at alpha=100,
           sharp drop at alpha=1000.
  Fig. 8 : dHMM identifies rare tags (Interjection, Foreign word) as the
           most transition-diverse relative to tag 1 (NOUN).
  Fig. 9 : per-tag token histogram of the dHMM is closer to the skewed
           ground-truth distribution than the HMM's.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.datasets.tags import tag_frequency_vector
from repro.experiments.pos import (
    corpus_statistics,
    run_pos_alpha_sweep,
    tag_frequency_histograms,
    transition_diversity_profile,
)
from repro.experiments.reporting import format_table
from repro.metrics.histograms import histogram_distance

ALPHA_GRID = (0.0, 0.1, 1.0, 10.0, 100.0)
_sweep_cache = {}


def _get_sweep(pos_corpus):
    key = id(pos_corpus)
    if key not in _sweep_cache:
        _sweep_cache[key] = run_pos_alpha_sweep(
            corpus=pos_corpus, alphas=ALPHA_GRID, max_em_iter=12, seed=1
        )
    return _sweep_cache[key]


def test_table2_tag_statistics(benchmark, pos_corpus):
    """Table 2: tag inventory statistics of the (synthetic) corpus."""
    rows = benchmark.pedantic(lambda: corpus_statistics(pos_corpus), rounds=1, iterations=1)

    print_header("Table 2 - tag group statistics (synthetic WSJ-like corpus)")
    print(format_table(["tag", "tokens", "fraction"], rows))

    # Shape checks mirroring the paper's description: a strongly skewed
    # distribution where a quarter of the groups covers most of the tokens,
    # with NOUN the most frequent group (as in the real Table 2).
    counts = np.array([count for _, count, _ in rows], dtype=float)
    assert counts[:4].sum() / counts.sum() > 0.5
    assert rows[0][0] == "NOUN"
    table2 = tag_frequency_vector()
    assert np.argmax(table2) == 0


def test_fig7_accuracy_vs_alpha(benchmark, pos_corpus):
    """Fig. 7: unsupervised 1-to-1 tagging accuracy as a function of alpha."""
    sweep = benchmark.pedantic(lambda: _get_sweep(pos_corpus), rounds=1, iterations=1)

    print_header("Fig. 7 - PoS 1-to-1 accuracy vs alpha")
    print(format_table(["alpha", "accuracy"], list(zip(sweep.alphas, sweep.accuracies))))
    print(f"baseline (alpha=0 / plain HMM): {sweep.baseline_accuracy:.4f}")
    print(f"best: {sweep.best_accuracy:.4f} at alpha={sweep.best_alpha}")
    print("paper: baseline 0.4475, best 0.4688 at alpha=100")

    chance = 1.0 / pos_corpus.n_tags
    assert np.all(sweep.accuracies > chance)
    # Shape check: the best dHMM setting does not fall meaningfully below
    # the plain-HMM baseline (the paper reports a modest improvement).
    assert sweep.best_accuracy >= sweep.baseline_accuracy - 0.05
    benchmark.extra_info["baseline"] = sweep.baseline_accuracy
    benchmark.extra_info["best"] = sweep.best_accuracy
    benchmark.extra_info["best_alpha"] = sweep.best_alpha


def test_fig8_tag1_diversity(benchmark, pos_corpus):
    """Fig. 8: transition diversity between tag 1 (NOUN) and every other tag."""
    sweep = _get_sweep(pos_corpus)
    hmm_model = sweep.models[0]
    dhmm_model = sweep.models[int(np.argmax(sweep.alphas))]

    def run():
        return (
            transition_diversity_profile(hmm_model, reference_tag=0),
            transition_diversity_profile(dhmm_model, reference_tag=0),
        )

    hmm_profile, dhmm_profile = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 8 - transition diversity between tag 1 (NOUN) and other tags")
    other_tags = [name for i, name in enumerate(pos_corpus.tag_names) if i != 0]
    rows = list(zip(other_tags, hmm_profile, dhmm_profile))
    print(format_table(["tag", "HMM", "dHMM"], rows))

    assert hmm_profile.shape == dhmm_profile.shape == (pos_corpus.n_tags - 1,)
    # Shape check: the dHMM's average pairwise separation from tag 1 is at
    # least as large as the HMM's.
    assert dhmm_profile.mean() >= hmm_profile.mean() - 0.05


def test_fig9_tag_histograms(benchmark, pos_corpus):
    """Fig. 9: per-tag token counts under gold tags, HMM and dHMM."""
    sweep = _get_sweep(pos_corpus)
    hmm_model = sweep.models[0]
    dhmm_model = sweep.models[int(np.argmax(sweep.alphas))]

    histograms = benchmark.pedantic(
        lambda: tag_frequency_histograms(pos_corpus, hmm_model, dhmm_model),
        rounds=1,
        iterations=1,
    )

    print_header("Fig. 9 - per-tag token histograms (ground truth / HMM / dHMM)")
    rows = [
        (pos_corpus.tag_names[i],
         int(histograms["ground_truth"][i]),
         int(histograms["hmm"][i]),
         int(histograms["dhmm"][i]))
        for i in range(pos_corpus.n_tags)
    ]
    print(format_table(["tag", "ground truth", "HMM", "dHMM"], rows))

    hmm_dist = histogram_distance(histograms["hmm"], histograms["ground_truth"])
    dhmm_dist = histogram_distance(histograms["dhmm"], histograms["ground_truth"])
    print(f"total-variation distance to ground truth: HMM {hmm_dist:.3f}, dHMM {dhmm_dist:.3f}")

    # The gold histogram must show the long-tail skew the paper describes.
    gt = np.sort(histograms["ground_truth"])[::-1]
    assert gt[:4].sum() / gt.sum() > 0.5
    benchmark.extra_info["hmm_distance"] = hmm_dist
    benchmark.extra_info["dhmm_distance"] = dhmm_dist
