"""Benchmark: micro-batched TaggingService vs sequential per-request decode.

Simulates a tagging API at PoS scale: every sentence of the benchmark
corpus is one client request.  The *sequential* baseline decodes each
request the moment it arrives (one engine call per sequence — what any
caller without the service would do); the *service* run submits the same
requests concurrently and lets the micro-batcher coalesce them into
engine length-buckets.  Also reports the fixed-lag streaming decoder's
single-token-latency path for reference.  Results are written to
``BENCH_serving.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_header
from repro.core.config import ServingConfig
from repro.hmm import CategoricalEmission, HMM
from repro.serving import StreamingDecoder, TaggingService

#: Acceptance floor for the service-vs-sequential throughput ratio (the
#: ISSUE-2 gate is 3x; an idle machine measures well above that).
MIN_SERVICE_SPEEDUP = float(os.environ.get("BENCH_MIN_SERVICE_SPEEDUP", "3.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _build_model(corpus) -> HMM:
    rng = np.random.default_rng(1)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=1
    )
    return HMM(
        rng.dirichlet(np.ones(corpus.n_tags)),
        rng.dirichlet(np.ones(corpus.n_tags), size=corpus.n_tags),
        emissions,
    )


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (one warm-up call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_micro_batched_service_speedup(benchmark, pos_corpus):
    model = _build_model(pos_corpus)
    sequences = pos_corpus.words
    n_tokens = sum(len(seq) for seq in sequences)
    # Coalescing several engine buckets' worth of requests per micro-batch
    # lets the engine sort them into near-rectangular length-buckets; a
    # micro-batch of exactly bucket_size arrival-ordered sequences pads the
    # whole bucket to its longest member.
    config = ServingConfig(max_batch_size=256, max_wait_ms=2.0)

    # Correctness gate: served paths must match direct batch decoding.
    with TaggingService(model, config=config) as service:
        served = service.tag_many(sequences)
    expected = model.predict(sequences)
    mismatched = sum(
        0 if np.array_equal(got, want) else 1 for got, want in zip(served, expected)
    )
    assert mismatched == 0

    def sequential():
        for seq in sequences:
            model.decode(seq)

    sequential_seconds = _time(sequential)

    def micro_batched():
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)

    service_seconds = _time(micro_batched)

    # Service occupancy stats from one instrumented run.
    with TaggingService(model, config=config) as service:
        service.tag_many(sequences)
        stats = service.stats.snapshot()

    # Reference: the per-token streaming path (latency-optimized, not
    # throughput-optimized) on a subset, scaled to tokens/second.
    stream_subset = sequences[:100]
    start = time.perf_counter()
    for seq in stream_subset:
        decoder = StreamingDecoder(model, lag=8)
        decoder.push_many(seq)
        decoder.finish()
    stream_seconds = time.perf_counter() - start
    stream_tokens = sum(len(s) for s in stream_subset)

    speedup = sequential_seconds / service_seconds
    results = {
        "workload": {
            "n_requests": len(sequences),
            "n_tokens": n_tokens,
            "n_states": pos_corpus.n_tags,
            "vocabulary_size": pos_corpus.vocabulary_size,
        },
        "config": {
            "max_batch_size": config.max_batch_size,
            "max_wait_ms": config.max_wait_ms,
        },
        "sequential_seconds": sequential_seconds,
        "service_seconds": service_seconds,
        "service_speedup": speedup,
        "sequential_tokens_per_second": n_tokens / sequential_seconds,
        "service_tokens_per_second": n_tokens / service_seconds,
        "streaming_tokens_per_second": stream_tokens / stream_seconds,
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size_observed": stats["max_batch_size"],
    }
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print_header("Serving - micro-batched TaggingService vs sequential decode")
    print(f"sequential : {sequential_seconds * 1e3:8.1f} ms "
          f"({results['sequential_tokens_per_second']:9.0f} tok/s)")
    print(f"service    : {service_seconds * 1e3:8.1f} ms "
          f"({results['service_tokens_per_second']:9.0f} tok/s) | {speedup:5.1f}x")
    print(f"streaming  : {results['streaming_tokens_per_second']:9.0f} tok/s "
          f"(fixed-lag 8, per-token latency path)")
    print(f"mean batch occupancy: {stats['mean_batch_size']:.1f} "
          f"(max {stats['max_batch_size']})")
    print(f"results written to {_RESULT_PATH.name}")

    benchmark.extra_info.update(service_speedup=speedup)
    benchmark.pedantic(micro_batched, rounds=1, iterations=1)

    assert speedup >= MIN_SERVICE_SPEEDUP
