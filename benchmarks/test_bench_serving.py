"""Benchmark: micro-batched TaggingService vs sequential per-request decode,
and batched streaming (B concurrent streams per tick) vs per-stream stepping.

Simulates a tagging API at PoS scale: every sentence of the benchmark
corpus is one client request.  The *sequential* baseline decodes each
request the moment it arrives (one engine call per sequence — what any
caller without the service would do); the *service* run submits the same
requests concurrently and lets the micro-batcher coalesce them into
engine length-buckets.  Also reports the fixed-lag streaming decoder's
single-token-latency path for reference.

The streaming benchmark drives B=32 concurrent online streams: the
baseline steps 32 independent ``StreamingSession`` objects per tick (what
PR 2 serving had to do), the batched run advances all 32 through one
``BatchedStreamingSession.step_many`` tick.  Results merge into
``BENCH_serving.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_header
from repro.core.config import ServingConfig
from repro.hmm import CategoricalEmission, HMM
from repro.serving import StreamingDecoder, StreamingService, TaggingService
from repro.utils.maths import safe_log

#: Acceptance floor for StreamingService tick occupancy with B concurrent
#: clients: queued pushes must coalesce into genuinely batched ticks.
MIN_STREAM_SERVICE_OCCUPANCY = float(
    os.environ.get("BENCH_MIN_STREAM_SERVICE_OCCUPANCY", "4.0")
)

#: Acceptance floor for the service-vs-sequential throughput ratio (the
#: ISSUE-2 gate is 3x; an idle machine measures well above that).
MIN_SERVICE_SPEEDUP = float(os.environ.get("BENCH_MIN_SERVICE_SPEEDUP", "3.0"))

#: Acceptance floor for batched streaming vs per-stream stepping at B=32
#: (the ISSUE-3 gate is 3x).
MIN_STREAM_BATCH_SPEEDUP = float(
    os.environ.get("BENCH_MIN_STREAM_BATCH_SPEEDUP", "3.0")
)

#: Acceptance floor for wave-batched StreamingService clients
#: (``submit_push_many``) vs per-client dedicated decoders.  The wave path
#: pays one queue round-trip per client instead of one per token and the
#: dispatcher advances all fronts through vectorized lock-step ticks, so
#: it must at least match the dedicated decoders it replaces.
MIN_STREAM_SERVICE_SPEEDUP = float(
    os.environ.get("BENCH_MIN_STREAM_SERVICE_SPEEDUP", "1.0")
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _merge_results(update: dict) -> None:
    """Merge one benchmark's keys into the shared BENCH_serving.json."""
    existing: dict = {}
    if _RESULT_PATH.is_file():
        try:
            existing = json.loads(_RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(update)
    _RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _build_model(corpus) -> HMM:
    rng = np.random.default_rng(1)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=1
    )
    return HMM(
        rng.dirichlet(np.ones(corpus.n_tags)),
        rng.dirichlet(np.ones(corpus.n_tags), size=corpus.n_tags),
        emissions,
    )


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (one warm-up call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_micro_batched_service_speedup(benchmark, pos_corpus):
    model = _build_model(pos_corpus)
    sequences = pos_corpus.words
    n_tokens = sum(len(seq) for seq in sequences)
    # Coalescing several engine buckets' worth of requests per micro-batch
    # lets the engine sort them into near-rectangular length-buckets; a
    # micro-batch of exactly bucket_size arrival-ordered sequences pads the
    # whole bucket to its longest member.
    config = ServingConfig(max_batch_size=256, max_wait_ms=2.0)

    # Correctness gate: served paths must match direct batch decoding.
    with TaggingService(model, config=config) as service:
        served = service.tag_many(sequences)
    expected = model.predict(sequences)
    mismatched = sum(
        0 if np.array_equal(got, want) else 1 for got, want in zip(served, expected)
    )
    assert mismatched == 0

    def sequential():
        for seq in sequences:
            model.decode(seq)

    sequential_seconds = _time(sequential)

    def micro_batched():
        with TaggingService(model, config=config) as service:
            service.tag_many(sequences)

    service_seconds = _time(micro_batched)

    # Service occupancy stats from one instrumented run.
    with TaggingService(model, config=config) as service:
        service.tag_many(sequences)
        stats = service.stats.snapshot()

    # Reference: the per-token streaming path (latency-optimized, not
    # throughput-optimized) on a subset, scaled to tokens/second.
    stream_subset = sequences[:100]
    start = time.perf_counter()
    for seq in stream_subset:
        decoder = StreamingDecoder(model, lag=8)
        decoder.push_many(seq)
        decoder.finish()
    stream_seconds = time.perf_counter() - start
    stream_tokens = sum(len(s) for s in stream_subset)

    speedup = sequential_seconds / service_seconds
    results = {
        "workload": {
            "n_requests": len(sequences),
            "n_tokens": n_tokens,
            "n_states": pos_corpus.n_tags,
            "vocabulary_size": pos_corpus.vocabulary_size,
        },
        "config": {
            "max_batch_size": config.max_batch_size,
            "max_wait_ms": config.max_wait_ms,
        },
        "sequential_seconds": sequential_seconds,
        "service_seconds": service_seconds,
        "service_speedup": speedup,
        "sequential_tokens_per_second": n_tokens / sequential_seconds,
        "service_tokens_per_second": n_tokens / service_seconds,
        "streaming_tokens_per_second": stream_tokens / stream_seconds,
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size_observed": stats["max_batch_size"],
    }
    _merge_results(results)

    print_header("Serving - micro-batched TaggingService vs sequential decode")
    print(f"sequential : {sequential_seconds * 1e3:8.1f} ms "
          f"({results['sequential_tokens_per_second']:9.0f} tok/s)")
    print(f"service    : {service_seconds * 1e3:8.1f} ms "
          f"({results['service_tokens_per_second']:9.0f} tok/s) | {speedup:5.1f}x")
    print(f"streaming  : {results['streaming_tokens_per_second']:9.0f} tok/s "
          f"(fixed-lag 8, per-token latency path)")
    print(f"mean batch occupancy: {stats['mean_batch_size']:.1f} "
          f"(max {stats['max_batch_size']})")
    print(f"results written to {_RESULT_PATH.name}")

    benchmark.extra_info.update(service_speedup=speedup)
    benchmark.pedantic(micro_batched, rounds=1, iterations=1)

    assert speedup >= MIN_SERVICE_SPEEDUP


def test_batched_streaming_speedup(benchmark, pos_corpus):
    """B=32 concurrent streams: one batched tick vs 32 per-stream steps."""
    from repro.hmm.backends import BatchedStreamingSession, StreamingSession

    model = _build_model(pos_corpus)
    log_pi, log_A = safe_log(model.startprob), safe_log(model.transmat)
    n_streams, length, lag = 32, 64, 16
    rng = np.random.default_rng(7)
    # one emission log-likelihood table per stream, precomputed so both
    # paths measure pure recursion stepping
    tables = [
        model.emissions.log_likelihoods(
            rng.integers(0, pos_corpus.vocabulary_size, size=length)
        )
        for _ in range(n_streams)
    ]

    def per_stream():
        sessions = [StreamingSession(log_pi, log_A, lag=lag) for _ in range(n_streams)]
        for t in range(length):
            for session, table in zip(sessions, tables):
                session.step(table[t])
        return [session.finish() for session in sessions]

    def batched():
        session = BatchedStreamingSession(log_pi, log_A, lags=[lag] * n_streams)
        for t in range(length):
            session.step_many(np.stack([table[t] for table in tables]))
        return [session.finish(i) for i in range(n_streams)]

    # Correctness gate: the batched path must reproduce per-stream labels.
    assert per_stream() == batched()

    per_stream_seconds = _time(per_stream)
    batched_seconds = _time(batched)
    speedup = per_stream_seconds / batched_seconds
    n_tokens = n_streams * length
    results = {
        "stream_batch_workload": {
            "n_streams": n_streams,
            "stream_length": length,
            "lag": lag,
            "n_states": pos_corpus.n_tags,
        },
        "per_stream_stepping_seconds": per_stream_seconds,
        "stream_batch_seconds": batched_seconds,
        "stream_batch_speedup": speedup,
        "per_stream_tokens_per_second": n_tokens / per_stream_seconds,
        "stream_batch_tokens_per_second": n_tokens / batched_seconds,
    }
    _merge_results(results)

    print_header("Serving - batched streaming vs per-stream stepping (B=32)")
    print(f"per-stream : {per_stream_seconds * 1e3:8.1f} ms "
          f"({results['per_stream_tokens_per_second']:9.0f} tok/s)")
    print(f"batched    : {batched_seconds * 1e3:8.1f} ms "
          f"({results['stream_batch_tokens_per_second']:9.0f} tok/s) | {speedup:5.1f}x")
    print(f"results merged into {_RESULT_PATH.name}")

    benchmark.extra_info.update(stream_batch_speedup=speedup)
    benchmark.pedantic(batched, rounds=1, iterations=1)

    assert speedup >= MIN_STREAM_BATCH_SPEEDUP


def test_streaming_service_concurrent_clients(benchmark, pos_corpus):
    """B=32 concurrent online clients through the dispatcher-driven
    StreamingService vs each client stepping its own StreamingDecoder.

    Two service client patterns are measured: per-token ``submit_push``
    (one queue round-trip per observation — the latency path) and
    wave-batched ``submit_push_many`` (one round-trip per client, the
    dispatcher advancing all fronts in vectorized lock-step ticks — the
    throughput path).  The wave path carries the throughput gate."""
    model = _build_model(pos_corpus)
    n_streams, length, lag = 32, 64, 16
    rng = np.random.default_rng(11)
    observations = [
        rng.integers(0, pos_corpus.vocabulary_size, size=length)
        for _ in range(n_streams)
    ]
    # every push is one queued request, so B * length pushes in flight at
    # once need the bound lifted (a real deployment would flow-control).
    # The batch-wait timer stays at zero: the pre-queued backlog is what
    # drives coalescing here (ticks stay at full B-width regardless), and
    # any positive wait would just tax the open/finish control round-trips.
    config = ServingConfig(max_batch_size=64, max_wait_ms=0.0, queue_capacity=None)

    def per_client_decoders():
        results = []
        for obs in observations:
            decoder = StreamingDecoder(model, lag=lag)
            decoder.push_many(obs)
            results.append(decoder.finish())
        return results

    def push_service_run():
        # the concurrent-client pattern: every stream's next observation is
        # already queued, so the dispatcher packs whole waves into one tick
        with StreamingService(model, lag=lag, config=config) as service:
            streams = [service.open() for _ in observations]
            futures = []
            for t in range(length):
                for stream, obs in zip(streams, observations):
                    futures.append(stream.submit_push(obs[t]))
            finishes = [stream.submit_finish() for stream in streams]
            for future in futures:
                future.result()
            return [future.result() for future in finishes]

    def wave_service_run():
        # the high-throughput pattern: each client ships its whole backlog
        # as ONE queue entry; the dispatcher runs the fronts in lock-step
        with StreamingService(model, lag=lag, config=config) as service:
            streams = [service.open() for _ in observations]
            futures = [
                stream.submit_push_many(obs)
                for stream, obs in zip(streams, observations)
            ]
            finishes = [stream.submit_finish() for stream in streams]
            for future in futures:
                future.result()
            return [future.result() for future in finishes]

    # Correctness gate: both service patterns must reproduce per-client
    # decoding bit-for-bit.
    expected = per_client_decoders()
    for served in (push_service_run(), wave_service_run()):
        assert all(
            np.array_equal(got.path, want.path)
            and got.log_likelihood == want.log_likelihood
            for got, want in zip(served, expected)
        )

    decoder_seconds = _time(per_client_decoders)
    push_seconds = _time(push_service_run)
    wave_seconds = _time(wave_service_run)

    with StreamingService(model, lag=lag, config=config) as service:
        streams = [service.open() for _ in observations]
        futures = [
            stream.submit_push(obs[t])
            for t in range(length)
            for stream, obs in zip(streams, observations)
        ]
        for future in futures:
            future.result()
        stats = service.stats.snapshot()

    n_tokens = n_streams * length
    push_speedup = decoder_seconds / push_seconds
    wave_speedup = decoder_seconds / wave_seconds
    results = {
        "stream_service_workload": {
            "n_streams": n_streams,
            "stream_length": length,
            "lag": lag,
            "n_states": pos_corpus.n_tags,
        },
        "per_client_decoder_seconds": decoder_seconds,
        "stream_service_push_seconds": push_seconds,
        "stream_service_push_speedup": push_speedup,
        "stream_service_wave_seconds": wave_seconds,
        "stream_service_speedup": wave_speedup,
        "per_client_tokens_per_second": n_tokens / decoder_seconds,
        "stream_service_push_tokens_per_second": n_tokens / push_seconds,
        "stream_service_wave_tokens_per_second": n_tokens / wave_seconds,
        "stream_service_mean_tick": stats["mean_batch_size"],
        "stream_service_max_tick": stats["max_batch_size"],
    }
    _merge_results(results)

    print_header("Serving - StreamingService (B=32 clients) vs per-client decoders")
    print(f"decoders   : {decoder_seconds * 1e3:8.1f} ms "
          f"({results['per_client_tokens_per_second']:9.0f} tok/s)")
    print(f"per-push   : {push_seconds * 1e3:8.1f} ms "
          f"({results['stream_service_push_tokens_per_second']:9.0f} tok/s) "
          f"| {push_speedup:5.1f}x")
    print(f"wave-batch : {wave_seconds * 1e3:8.1f} ms "
          f"({results['stream_service_wave_tokens_per_second']:9.0f} tok/s) "
          f"| {wave_speedup:5.1f}x")
    print(f"mean tick occupancy: {stats['mean_batch_size']:.1f} "
          f"(max {stats['max_batch_size']})")
    print(f"results merged into {_RESULT_PATH.name}")

    benchmark.extra_info.update(
        stream_service_push_speedup=push_speedup,
        stream_service_speedup=wave_speedup,
    )
    benchmark.pedantic(wave_service_run, rounds=1, iterations=1)

    # The per-push ratio is hardware/noise-sensitive (every push pays a
    # queue+future round-trip), so its gate is on coalescing: B queued
    # clients must produce genuinely batched ticks.
    assert stats["mean_batch_size"] >= MIN_STREAM_SERVICE_OCCUPANCY
    # The wave path amortizes the round-trips away, so the throughput
    # ratio itself is gated.
    assert wave_speedup >= MIN_STREAM_SERVICE_SPEEDUP
