"""Benchmark: batched scaled-domain engine vs. sequential log-domain reference.

Times the EM E-step (forward-backward over the whole corpus) and batched
Viterbi decoding on the PoS-scale workload with both inference backends,
checks the posteriors agree to 1e-8 and the decoded paths are bit-identical,
and writes the measurements to ``BENCH_inference.json`` at the repository
root so future PRs can track the performance trajectory.

Two Viterbi timings are recorded: the ad-hoc ``viterbi_batch`` path (tables
in, re-bucketed per call) and the ``viterbi_corpus`` path over a
:class:`~repro.hmm.corpus.CompiledCorpus` (the dataset encoded once, as the
training loop and offline decode workloads use it).  The corpus path is the
gated one.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_header
from repro.hmm import BaumWelchTrainer, CategoricalEmission, HMM, InferenceEngine
from repro.hmm.backends import viterbi_backpointer_dtype

#: Acceptance floor for the E-step speedup of the batched engine (~20x on an
#: idle machine).  Overridable so noisy shared CI runners can relax the gate
#: without losing the recorded numbers.
MIN_E_STEP_SPEEDUP = float(os.environ.get("BENCH_MIN_E_STEP_SPEEDUP", "5.0"))

#: Acceptance floor for the fused log-domain Viterbi kernel over the
#: compiled corpus (~4.5x on an idle machine; the pre-fusion kernel sat at
#: ~2.3x).
MIN_VITERBI_SPEEDUP = float(os.environ.get("BENCH_MIN_VITERBI_SPEEDUP", "4.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_inference.json"


def _merge_results(update: dict) -> None:
    """Merge this benchmark's keys into the shared BENCH_inference.json.

    The long-sequence benchmark writes its section into the same file, so
    a clobbering ``write_text`` here would erase it (and vice versa)
    depending on execution order.
    """
    existing: dict = {}
    if _RESULT_PATH.is_file():
        try:
            existing = json.loads(_RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(update)
    _RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _build_model(corpus) -> HMM:
    rng = np.random.default_rng(1)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=1
    )
    return HMM(
        rng.dirichlet(np.ones(corpus.n_tags)),
        rng.dirichlet(np.ones(corpus.n_tags), size=corpus.n_tags),
        emissions,
    )


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (one warm-up call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_engine_speedup(benchmark, pos_corpus):
    model = _build_model(pos_corpus)
    sequences = pos_corpus.words
    scaled = InferenceEngine(backend="scaled")
    reference = InferenceEngine(backend="log")
    scaled_trainer = BaumWelchTrainer(engine=scaled)
    reference_trainer = BaumWelchTrainer(engine=reference)

    # Correctness gate: the backends must agree before timing means anything.
    scaled_stats = scaled_trainer.e_step(model, sequences)
    reference_stats = reference_trainer.e_step(model, sequences)
    np.testing.assert_allclose(
        scaled_stats.transition_counts,
        reference_stats.transition_counts,
        atol=1e-8,
        rtol=0,
    )
    for got, want in zip(scaled_stats.posteriors, reference_stats.posteriors):
        np.testing.assert_allclose(got, want, atol=1e-8, rtol=0)
    assert abs(scaled_stats.log_likelihood - reference_stats.log_likelihood) < 1e-6

    e_step_scaled = _time(lambda: scaled_trainer.e_step(model, sequences))
    e_step_reference = _time(lambda: reference_trainer.e_step(model, sequences))

    tables = [model.emissions.log_likelihoods(seq) for seq in sequences]
    corpus = scaled.compile(sequences)
    scores_ext = corpus.score(model.emissions)
    viterbi_batch_scaled = _time(
        lambda: scaled.viterbi_batch(model.startprob, model.transmat, tables)
    )
    viterbi_scaled = _time(
        lambda: scaled.viterbi_corpus(
            model.startprob, model.transmat, corpus, scores_ext
        )
    )
    viterbi_reference = _time(
        lambda: reference.viterbi_batch(model.startprob, model.transmat, tables)
    )
    scaled_paths = scaled.viterbi_corpus(
        model.startprob, model.transmat, corpus, scores_ext
    )
    reference_paths = reference.viterbi_batch(model.startprob, model.transmat, tables)
    # The fused kernel runs the same log-domain recursion as the reference,
    # so paths and joint log-probabilities must be bit-identical.
    for (got_path, got_lj), (want_path, want_lj) in zip(scaled_paths, reference_paths):
        np.testing.assert_array_equal(got_path, want_path)
        assert got_lj == want_lj

    # Memory footprint: the kernel's *actual* backpointer allocation (the
    # backend records the dtype of its most recent one) must use the
    # smallest dtype that can index the state space — uint8 here, an 8x
    # saving over the int64 it used to allocate.
    bp_dtype = scaled.backend.last_backpointer_dtype
    assert bp_dtype is not None
    assert bp_dtype == viterbi_backpointer_dtype(pos_corpus.n_tags)
    assert bp_dtype.itemsize == 1
    largest_bucket = max(
        b.positions.shape[0] * b.max_len * pos_corpus.n_tags for b in corpus.buckets
    )
    int64_bytes = largest_bucket * np.dtype(np.int64).itemsize
    assert largest_bucket * bp_dtype.itemsize <= int64_bytes // 8

    e_step_speedup = e_step_reference / e_step_scaled
    viterbi_speedup = viterbi_reference / viterbi_scaled
    viterbi_batch_speedup = viterbi_reference / viterbi_batch_scaled

    results = {
        "workload": {
            "n_sentences": pos_corpus.n_sentences,
            "n_tokens": pos_corpus.n_tokens,
            "n_states": pos_corpus.n_tags,
            "vocabulary_size": pos_corpus.vocabulary_size,
        },
        "e_step_seconds": {"scaled": e_step_scaled, "log": e_step_reference},
        "viterbi_seconds": {
            "scaled": viterbi_scaled,
            "scaled_batch": viterbi_batch_scaled,
            "log": viterbi_reference,
        },
        "e_step_speedup": e_step_speedup,
        "viterbi_speedup": viterbi_speedup,
        "viterbi_batch_speedup": viterbi_batch_speedup,
        "viterbi_backpointer_dtype": bp_dtype.name,
    }
    _merge_results(results)

    print_header("Inference engine - batched scaled vs sequential log-domain")
    print(f"E-step          : scaled {e_step_scaled * 1e3:8.1f} ms | "
          f"log {e_step_reference * 1e3:8.1f} ms | {e_step_speedup:5.1f}x")
    print(f"Viterbi (corpus): scaled {viterbi_scaled * 1e3:8.1f} ms | "
          f"log {viterbi_reference * 1e3:8.1f} ms | {viterbi_speedup:5.1f}x")
    print(f"Viterbi (batch) : scaled {viterbi_batch_scaled * 1e3:8.1f} ms | "
          f"log {viterbi_reference * 1e3:8.1f} ms | {viterbi_batch_speedup:5.1f}x")
    print(f"results merged into {_RESULT_PATH.name}")

    benchmark.extra_info.update(
        e_step_speedup=e_step_speedup, viterbi_speedup=viterbi_speedup
    )
    benchmark.pedantic(
        lambda: scaled_trainer.e_step(model, sequences), rounds=1, iterations=1
    )

    assert e_step_speedup >= MIN_E_STEP_SPEEDUP
    assert viterbi_speedup >= MIN_VITERBI_SPEEDUP
