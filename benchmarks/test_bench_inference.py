"""Benchmark: batched scaled-domain engine vs. sequential log-domain reference.

Times the EM E-step (forward-backward over the whole corpus) and batched
Viterbi decoding on the PoS-scale workload with both inference backends,
checks the posteriors agree to 1e-8, and writes the measurements to
``BENCH_inference.json`` at the repository root so future PRs can track
the performance trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_header
from repro.hmm import BaumWelchTrainer, CategoricalEmission, HMM, InferenceEngine

#: Acceptance floor for the E-step speedup of the batched engine (~17x on an
#: idle machine).  Overridable so noisy shared CI runners can relax the gate
#: without losing the recorded numbers.
MIN_E_STEP_SPEEDUP = float(os.environ.get("BENCH_MIN_E_STEP_SPEEDUP", "5.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_inference.json"


def _build_model(corpus) -> HMM:
    rng = np.random.default_rng(1)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=1
    )
    return HMM(
        rng.dirichlet(np.ones(corpus.n_tags)),
        rng.dirichlet(np.ones(corpus.n_tags), size=corpus.n_tags),
        emissions,
    )


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time in seconds (one warm-up call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_engine_speedup(benchmark, pos_corpus):
    model = _build_model(pos_corpus)
    sequences = pos_corpus.words
    scaled = InferenceEngine(backend="scaled")
    reference = InferenceEngine(backend="log")
    scaled_trainer = BaumWelchTrainer(engine=scaled)
    reference_trainer = BaumWelchTrainer(engine=reference)

    # Correctness gate: the backends must agree before timing means anything.
    scaled_stats = scaled_trainer.e_step(model, sequences)
    reference_stats = reference_trainer.e_step(model, sequences)
    np.testing.assert_allclose(
        scaled_stats.transition_counts,
        reference_stats.transition_counts,
        atol=1e-8,
        rtol=0,
    )
    for got, want in zip(scaled_stats.posteriors, reference_stats.posteriors):
        np.testing.assert_allclose(got, want, atol=1e-8, rtol=0)
    assert abs(scaled_stats.log_likelihood - reference_stats.log_likelihood) < 1e-6

    e_step_scaled = _time(lambda: scaled_trainer.e_step(model, sequences))
    e_step_reference = _time(lambda: reference_trainer.e_step(model, sequences))

    tables = [model.emissions.log_likelihoods(seq) for seq in sequences]
    viterbi_scaled = _time(
        lambda: scaled.viterbi_batch(model.startprob, model.transmat, tables)
    )
    viterbi_reference = _time(
        lambda: reference.viterbi_batch(model.startprob, model.transmat, tables)
    )
    scaled_paths = scaled.viterbi_batch(model.startprob, model.transmat, tables)
    reference_paths = reference.viterbi_batch(model.startprob, model.transmat, tables)
    # Equally likely paths may tie-break differently across domains, so
    # equivalence is judged on the joint log-probability, not the raw path.
    for (_, got_lj), (_, want_lj) in zip(scaled_paths, reference_paths):
        assert abs(got_lj - want_lj) < 1e-8 * max(1.0, abs(want_lj))

    e_step_speedup = e_step_reference / e_step_scaled
    viterbi_speedup = viterbi_reference / viterbi_scaled

    results = {
        "workload": {
            "n_sentences": pos_corpus.n_sentences,
            "n_tokens": pos_corpus.n_tokens,
            "n_states": pos_corpus.n_tags,
            "vocabulary_size": pos_corpus.vocabulary_size,
        },
        "e_step_seconds": {"scaled": e_step_scaled, "log": e_step_reference},
        "viterbi_seconds": {"scaled": viterbi_scaled, "log": viterbi_reference},
        "e_step_speedup": e_step_speedup,
        "viterbi_speedup": viterbi_speedup,
    }
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print_header("Inference engine - batched scaled vs sequential log-domain")
    print(f"E-step   : scaled {e_step_scaled * 1e3:8.1f} ms | "
          f"log {e_step_reference * 1e3:8.1f} ms | {e_step_speedup:5.1f}x")
    print(f"Viterbi  : scaled {viterbi_scaled * 1e3:8.1f} ms | "
          f"log {viterbi_reference * 1e3:8.1f} ms | {viterbi_speedup:5.1f}x")
    print(f"results written to {_RESULT_PATH.name}")

    benchmark.extra_info.update(
        e_step_speedup=e_step_speedup, viterbi_speedup=viterbi_speedup
    )
    benchmark.pedantic(
        lambda: scaled_trainer.e_step(model, sequences), rounds=1, iterations=1
    )

    # The Viterbi speedup (~2.4x locally) is report-only: it has little
    # headroom against scheduler noise, and only the E-step is gated.
    assert e_step_speedup >= MIN_E_STEP_SPEEDUP
