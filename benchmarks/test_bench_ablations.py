"""Ablation benchmarks on design choices called out in DESIGN.md (A1, A2)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.experiments.ablations import run_projection_ablation, run_rho_ablation
from repro.experiments.reporting import format_table


def test_rho_ablation(benchmark):
    """A1: sensitivity of the dHMM to the probability-product-kernel exponent."""

    def run():
        return run_rho_ablation(
            rhos=(0.25, 0.5, 1.0), alpha=1.0, sigma=1.0, n_sequences=150, max_em_iter=12, seed=0
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A1 - probability product kernel exponent rho")
    print(format_table(
        ["setting", "1-to-1 accuracy", "row diversity"],
        [(r.name, r.accuracy, r.diversity) for r in rows],
    ))

    accuracies = np.array([r.accuracy for r in rows])
    # The choice of rho should not change the qualitative behaviour: all
    # settings stay well above chance and within a band of each other.
    assert np.all(accuracies > 0.25)
    assert accuracies.max() - accuracies.min() < 0.3


def test_projection_ablation(benchmark):
    """A2: simplex projection vs clip-and-renormalize in the transition M-step."""

    def run():
        return run_projection_ablation(
            alpha=1.0, sigma=1.0, n_sequences=150, max_em_iter=12, seed=0
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A2 - transition M-step feasibility restoration")
    print(format_table(
        ["setting", "1-to-1 accuracy", "row diversity"],
        [(r.name, r.accuracy, r.diversity) for r in rows],
    ))

    by_name = {r.name: r for r in rows}
    # The principled simplex projection should do at least as well as the
    # cheap renormalization heuristic.
    assert by_name["simplex-projection"].accuracy >= by_name["renormalize"].accuracy - 0.1
