"""Benchmarks regenerating the OCR artifacts: Fig. 10, Fig. 11, Fig. 12.

Paper reference values (Kassel/Taskar handwriting, 10-fold CV):
  Fig. 10 : HMM (alpha=0) 0.7102, best dHMM 0.7203 at alpha=10 (alpha_A=1e5)
  Fig. 11 : Naive Bayes 62.7% < HMM 70.6% <= Optimized HMM < dHMM 72.06%
  Fig. 12 : dHMM heightens the transition diversity of letters 'x' and 'y'
            against specific partners (x-g, x-j, y-f).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_header
from repro.datasets.ocr import LETTERS
from repro.experiments.ocr import (
    letter_diversity_profiles,
    run_ocr_alpha_sweep,
    run_ocr_classifier_comparison,
)
from repro.experiments.reporting import format_table

ALPHA_GRID = (0.0, 0.1, 1.0, 10.0, 100.0)


def test_fig10_accuracy_vs_alpha(benchmark, ocr_dataset):
    """Fig. 10: supervised OCR accuracy as a function of alpha (alpha_A = 1e5)."""

    def run():
        return run_ocr_alpha_sweep(
            dataset=ocr_dataset, alphas=ALPHA_GRID, alpha_anchor=1e5, n_folds=4, seed=0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 10 - OCR accuracy vs alpha (alpha_A = 1e5)")
    print(format_table(["alpha", "accuracy"], list(zip(sweep.alphas, sweep.accuracies))))
    print(f"baseline (alpha=0 / plain HMM): {sweep.baseline_accuracy:.4f}")
    print(f"best: {sweep.best_accuracy:.4f} at alpha={sweep.best_alpha}")
    print("paper: baseline 0.7102, best 0.7203 at alpha=10")

    assert np.all(sweep.accuracies > 0.4)
    # Shape check: adding the prior never costs more than a small margin and
    # the best setting is at least the baseline.
    assert sweep.best_accuracy >= sweep.baseline_accuracy - 1e-9
    assert sweep.accuracies.min() >= sweep.baseline_accuracy - 0.05
    benchmark.extra_info["baseline"] = sweep.baseline_accuracy
    benchmark.extra_info["best"] = sweep.best_accuracy
    benchmark.extra_info["best_alpha"] = sweep.best_alpha


def test_fig11_classifier_comparison(benchmark, ocr_dataset):
    """Fig. 11: Naive Bayes vs HMM vs Optimized HMM vs dHMM (k-fold CV)."""

    def run():
        return run_ocr_classifier_comparison(
            dataset=ocr_dataset, alpha=10.0, alpha_anchor=1e5, n_folds=5, seed=0
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Fig. 11 - OCR test accuracy by classifier (mean +/- std over folds)")
    print(format_table(["classifier", "accuracy", "std"], comparison.as_rows()))
    print("paper: NB 0.627, HMM 0.706, Optimized HMM ~0.71, dHMM 0.7206")

    accuracies = dict(zip(comparison.classifier_names, comparison.mean_accuracies))
    # Shape checks: the chain-structured models beat the independent
    # classifier, and the dHMM at least matches the plain HMM.
    assert accuracies["HMM"] > accuracies["Naive Bayes"]
    assert accuracies["dHMM"] > accuracies["Naive Bayes"]
    assert accuracies["dHMM"] >= accuracies["HMM"] - 0.01
    for name, acc in accuracies.items():
        benchmark.extra_info[name] = float(acc)


def test_fig12_letter_diversity(benchmark, ocr_dataset):
    """Fig. 12: transition diversity of letters 'x' and 'y' vs all others."""

    def run():
        return letter_diversity_profiles(
            dataset=ocr_dataset, letters=("x", "y"), alpha=10.0, alpha_anchor=1e5, seed=0
        )

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    for letter in ("x", "y"):
        others = [c for c in LETTERS if c != letter]
        print_header(f"Fig. 12 - transition diversity between '{letter}' and the other letters")
        rows = list(zip(others, profiles[letter]["hmm"], profiles[letter]["dhmm"]))
        print(format_table(["letter", "HMM", "dHMM"], rows))

        hmm_profile = profiles[letter]["hmm"]
        dhmm_profile = profiles[letter]["dhmm"]
        assert hmm_profile.shape == (25,)
        # Shape check: the overall trend of the two curves agrees (the paper
        # notes they are "almost the same everywhere" except a few pairs) and
        # the dHMM does not reduce the average diversity.
        correlation = np.corrcoef(hmm_profile, dhmm_profile)[0, 1]
        assert correlation > 0.8
        assert dhmm_profile.mean() >= hmm_profile.mean() - 0.02
