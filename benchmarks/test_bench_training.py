"""Benchmark: full EM-iteration throughput over a compiled corpus.

The training loop is the workload the paper's experiments hammer: repeated
Baum-Welch fits of HMM/dHMM across the PoS and OCR datasets and whole
ablation grids.  This benchmark times complete EM iterations (E-step *and*
M-step) through the compiled-corpus fast path — dataset encoded once by
:class:`~repro.hmm.corpus.CompiledCorpus`, one vectorized emission-scoring
call + bucket gather/scatter per iteration, bincount/matmul M-steps —
against the per-sequence log-domain baseline (log backend recursions,
per-sequence statistic accumulation, ``np.add.at`` emission updates), and
gates the speedup.

Results merge into ``BENCH_training.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_header
from repro.hmm import BaumWelchTrainer, CategoricalEmission, HMM, InferenceEngine

#: Acceptance floor for full-EM-iteration throughput of the compiled-corpus
#: path over the per-sequence log-domain baseline (~15x on an idle machine).
#: Overridable so noisy shared CI runners can relax the gate.
MIN_TRAINING_SPEEDUP = float(os.environ.get("BENCH_MIN_TRAINING_SPEEDUP", "5.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_training.json"

_N_ITER = 3


def _fresh_model(corpus) -> HMM:
    rng = np.random.default_rng(7)
    emissions = CategoricalEmission.random_init(
        corpus.n_tags, corpus.vocabulary_size, seed=7
    )
    return HMM(
        rng.dirichlet(np.ones(corpus.n_tags)),
        rng.dirichlet(np.ones(corpus.n_tags), size=corpus.n_tags),
        emissions,
    )


def _run_reference(model: HMM, sequences, n_iter: int) -> list[float]:
    """Per-sequence log-domain EM: the pre-compiled-corpus iteration shape."""
    trainer = BaumWelchTrainer(engine=InferenceEngine(backend="log"))
    history = []
    for _ in range(n_iter):
        stats = trainer.e_step(model, sequences)
        history.append(stats.log_likelihood)
        trainer.m_step(model, sequences, stats)
    return history


def _run_compiled(model: HMM, corpus, n_iter: int) -> list[float]:
    """Compiled-corpus EM through the scaled engine (the fit() fast path)."""
    trainer = BaumWelchTrainer(
        engine=InferenceEngine(backend="scaled"), max_iter=n_iter, tol=0.0
    )
    return trainer.fit(model, corpus).history


def test_em_iteration_throughput(benchmark, pos_corpus):
    sequences = pos_corpus.words
    scaled_engine = InferenceEngine(backend="scaled")
    corpus = scaled_engine.compile(sequences)

    # Correctness gate: both paths must walk the same EM trajectory.
    reference_history = _run_reference(_fresh_model(pos_corpus), sequences, _N_ITER)
    compiled_history = _run_compiled(_fresh_model(pos_corpus), corpus, _N_ITER)
    np.testing.assert_allclose(
        compiled_history, reference_history, rtol=1e-9, atol=1e-6
    )

    def time_once(fn) -> float:
        fn()  # warm-up
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    compiled_seconds = time_once(
        lambda: _run_compiled(_fresh_model(pos_corpus), corpus, _N_ITER)
    )
    reference_seconds = time_once(
        lambda: _run_reference(_fresh_model(pos_corpus), sequences, _N_ITER)
    )
    # Opt-in bucket-level thread pool (report-only; two workers).
    threaded_engine = InferenceEngine(backend="scaled", n_workers=2)
    threaded_seconds = time_once(
        lambda: BaumWelchTrainer(
            engine=threaded_engine, max_iter=_N_ITER, tol=0.0
        ).fit(_fresh_model(pos_corpus), corpus)
    )

    speedup = reference_seconds / compiled_seconds
    iteration_ms = compiled_seconds / _N_ITER * 1e3
    tokens_per_second = pos_corpus.n_tokens * _N_ITER / compiled_seconds

    results = {
        "workload": {
            "n_sentences": pos_corpus.n_sentences,
            "n_tokens": pos_corpus.n_tokens,
            "n_states": pos_corpus.n_tags,
            "vocabulary_size": pos_corpus.vocabulary_size,
            "n_iterations": _N_ITER,
        },
        "em_seconds": {
            "compiled": compiled_seconds,
            "compiled_2_workers": threaded_seconds,
            "log_reference": reference_seconds,
        },
        "em_iteration_ms": iteration_ms,
        "em_tokens_per_second": tokens_per_second,
        "em_speedup": speedup,
    }
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    print_header("Training - compiled-corpus EM vs per-sequence log-domain EM")
    print(f"{_N_ITER} EM iterations: compiled {compiled_seconds * 1e3:8.1f} ms | "
          f"log {reference_seconds * 1e3:8.1f} ms | {speedup:5.1f}x")
    print(f"per-iteration {iteration_ms:.1f} ms "
          f"({tokens_per_second / 1e3:.0f}K tokens/s); "
          f"2-worker pool {threaded_seconds * 1e3:.1f} ms")
    print(f"results written to {_RESULT_PATH.name}")

    benchmark.extra_info.update(em_speedup=speedup)
    benchmark.pedantic(
        lambda: _run_compiled(_fresh_model(pos_corpus), corpus, 1),
        rounds=1,
        iterations=1,
    )

    assert speedup >= MIN_TRAINING_SPEEDUP
