"""Benchmark: multi-process serving throughput and shared-memory artifacts.

Two acceptance workloads for the cluster tier:

* **Multi-worker throughput** — concurrent HTTP clients tagging through a
  :class:`~repro.serving.cluster.ClusterServer` at 1 worker vs 4 workers.
  The speedup floor scales with the cores actually available to this
  process: the paper-number gate is 2x at >= 4 cores, but a CI container
  pinned to one core physically cannot run four decode processes in
  parallel, so the floor degrades gracefully (and
  ``BENCH_MIN_MULTI_WORKER_SPEEDUP`` overrides it outright).

* **mmap artifact sharing** — a large categorical model loaded by child
  processes with ``mmap=True`` vs a private-copy load, comparing the
  ``Private_Dirty`` delta from ``/proc/self/smaps_rollup``.  Mapped
  parameter pages are file-backed and clean, so per-worker incremental
  memory must be a small fraction of the private-copy cost.

Results merge into ``BENCH_serving.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from benchmarks.conftest import print_header
from repro.hmm import CategoricalEmission, HMM
from repro.serving import ClusterServer, ModelRegistry, save_artifact

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

#: fraction of the private-copy Private_Dirty growth a mmap load may incur.
MAX_MMAP_RSS_FRACTION = float(os.environ.get("BENCH_MAX_MMAP_RSS_FRACTION", "0.25"))


def _merge_results(update: dict) -> None:
    """Merge one benchmark's keys into the shared BENCH_serving.json."""
    existing: dict = {}
    if _RESULT_PATH.is_file():
        try:
            existing = json.loads(_RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing.update(update)
    _RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _multi_worker_floor(cores: int) -> float:
    """Core-aware speedup floor for the 4-worker vs 1-worker ratio."""
    override = os.environ.get("BENCH_MIN_MULTI_WORKER_SPEEDUP")
    if override is not None:
        return float(override)
    if cores >= 4:
        return 2.0  # the headline gate: 4 workers must at least double 1
    if cores >= 2:
        return 1.0  # 4 workers on 2 cores: no regression allowed
    return 0.25  # 1 core: parallelism is impossible; only sanity-gate


def _serving_model(seed: int = 0, n_states: int = 16, n_symbols: int = 1000) -> HMM:
    rng = np.random.default_rng(seed)
    rows = rng.random((n_states, n_symbols))
    rows /= rows.sum(axis=1, keepdims=True)
    return HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        CategoricalEmission(rows),
    )


def _drive_cluster(cluster, sequence, n_threads: int, requests_per_thread: int) -> float:
    """Hammer the cluster from concurrent clients; returns wall seconds."""
    url = f"http://{cluster.host}:{cluster.port}/v1/models/m/tag"
    payload = json.dumps({"sequence": sequence}).encode()
    errors: list[BaseException] = []

    def client() -> None:
        for _ in range(requests_per_thread):
            request = urllib.request.Request(
                url,
                data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    response.read()
            except BaseException as exc:  # surfaced after the join below
                errors.append(exc)
                return

    threads = [threading.Thread(target=client) for _ in range(n_threads)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client requests failed: {errors[:3]}"
    return elapsed


def test_multi_worker_throughput(tmp_path):
    """4 ClusterServer workers vs 1 under concurrent HTTP tagging load."""
    registry = ModelRegistry(tmp_path / "registry")
    registry.save("m", _serving_model())
    rng = np.random.default_rng(3)
    sequence = [int(s) for s in rng.integers(0, 1000, size=96)]
    n_threads, requests_per_thread = 8, 25
    total_requests = n_threads * requests_per_thread

    seconds: dict[int, float] = {}
    for n_workers in (1, 4):
        cluster = ClusterServer(
            registry, port=0, n_workers=n_workers, warm_up=["m"]
        )
        cluster.start()
        try:
            # one warm-up pass so connection setup and code paths are hot
            _drive_cluster(cluster, sequence, n_threads, 2)
            seconds[n_workers] = _drive_cluster(
                cluster, sequence, n_threads, requests_per_thread
            )
        finally:
            cluster.close()

    cores = _available_cores()
    floor = _multi_worker_floor(cores)
    speedup = seconds[1] / seconds[4]
    results = {
        "multi_worker": {
            "workload": {
                "n_client_threads": n_threads,
                "requests_per_thread": requests_per_thread,
                "sequence_length": len(sequence),
            },
            "one_worker_seconds": seconds[1],
            "four_worker_seconds": seconds[4],
            "one_worker_requests_per_second": total_requests / seconds[1],
            "four_worker_requests_per_second": total_requests / seconds[4],
            "speedup": speedup,
            "cores_available": cores,
            "effective_floor": floor,
        }
    }
    _merge_results(results)

    print_header("Serving cluster - 4 workers vs 1 (concurrent HTTP clients)")
    print(f"1 worker : {seconds[1] * 1e3:8.1f} ms "
          f"({results['multi_worker']['one_worker_requests_per_second']:7.0f} req/s)")
    print(f"4 workers: {seconds[4] * 1e3:8.1f} ms "
          f"({results['multi_worker']['four_worker_requests_per_second']:7.0f} req/s) "
          f"| {speedup:5.2f}x")
    print(f"cores available: {cores}  ->  speedup floor {floor:.2f}x")
    print(f"results merged into {_RESULT_PATH.name}")

    assert speedup >= floor


# ------------------------------------------------------------------ #
# mmap artifact sharing
# ------------------------------------------------------------------ #
_RSS_CHILD = """
import json, sys
import numpy as np
from repro.serving import load_artifact

def private_dirty_kb():
    with open("/proc/self/smaps_rollup") as fh:
        for line in fh:
            if line.startswith("Private_Dirty:"):
                return int(line.split()[1])
    raise SystemExit("no Private_Dirty in smaps_rollup")

before = private_dirty_kb()
model = load_artifact(sys.argv[1], mmap=(sys.argv[2] == "mmap"))
# touch every parameter page so lazily-mapped pages are faulted in and the
# measurement reflects a worker that has actually served traffic
checksum = float(model.emissions.emission_probs.sum())
checksum += float(model.transmat.sum()) + float(model.startprob.sum())
after = private_dirty_kb()
print(json.dumps({"delta_kb": after - before, "checksum": checksum}))
"""


def _measure_child(artifact: Path, mode: str) -> dict:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, str(artifact), mode],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_mmap_artifact_sharing_rss(tmp_path):
    """Per-worker incremental dirty memory with mmap vs private copies."""
    if not Path("/proc/self/smaps_rollup").exists():
        pytest.skip("smaps_rollup not available on this kernel")
    # ~37 MB of emission parameters: 24 states x 200k symbols of float64 —
    # large enough that page-table noise is irrelevant to the comparison.
    n_states, n_symbols = 24, 200_000
    rng = np.random.default_rng(0)
    rows = rng.random((n_states, n_symbols))
    rows /= rows.sum(axis=1, keepdims=True)
    model = HMM(
        rng.dirichlet(np.ones(n_states)),
        rng.dirichlet(np.ones(n_states), size=n_states),
        CategoricalEmission(rows),
    )
    artifact = save_artifact(model, tmp_path / "big")
    payload_kb = sum(
        p.stat().st_size for p in artifact.glob("arrays-*.npy")
    ) / 1024.0

    private = _measure_child(artifact, "private")
    mapped = _measure_child(artifact, "mmap")
    # both children touched identical parameters
    assert mapped["checksum"] == pytest.approx(private["checksum"], rel=1e-12)

    fraction = mapped["delta_kb"] / max(private["delta_kb"], 1)
    results = {
        "mmap_sharing": {
            "payload_kb": payload_kb,
            "private_copy_delta_kb": private["delta_kb"],
            "mmap_delta_kb": mapped["delta_kb"],
            "mmap_fraction_of_private": fraction,
            "max_fraction_allowed": MAX_MMAP_RSS_FRACTION,
        }
    }
    _merge_results(results)

    print_header("Serving cluster - per-worker dirty memory: mmap vs private copy")
    print(f"payload      : {payload_kb:9.0f} kB on disk")
    print(f"private copy : {private['delta_kb']:9d} kB Private_Dirty growth")
    print(f"mmap         : {mapped['delta_kb']:9d} kB Private_Dirty growth "
          f"({fraction * 100:.1f}% of private)")
    print(f"results merged into {_RESULT_PATH.name}")

    # a private load must actually have paid for the payload...
    assert private["delta_kb"] > payload_kb * 0.8
    # ...while the mapped load shares file-backed clean pages
    assert fraction < MAX_MMAP_RSS_FRACTION
